//! The per-connection state machine for the event-driven serve core.
//!
//! One connection carries exactly one request and one response (the
//! client opens a fresh connection per attempt), so its whole life is a
//! straight line:
//!
//! ```text
//! Accepted ──first byte──► ReadingLen ──4 bytes──► ReadingPayload
//!     │                                                   │ frame complete
//!     │                                                   ▼
//!     │                    Done ◄──flushed── Writing ◄── Dispatched
//!     └── (idle: allowed to sit; costs one fd and ~200 bytes)
//! ```
//!
//! Every transition is driven by a readiness event, never by a blocking
//! read: [`Conn::on_readable`] consumes whatever bytes the socket has —
//! one at a time from a dribbling client is fine — and reports
//! [`ReadStep::Frame`] only once the length prefix and full payload have
//! arrived. [`Conn::on_writable`] mirrors that for the response. A peer
//! may therefore take minutes to deliver a frame without holding any
//! thread, buffer beyond its own frame, or delaying any other
//! connection; that is the property the adversarial suite pins.
//!
//! The state machine is generic over the byte stream so unit tests can
//! drive it with scripted partial reads and `WouldBlock`s; the server
//! instantiates it with a nonblocking [`std::net::TcpStream`].

use crate::proto::MAX_FRAME;
use std::io::{self, Read, Write};
use std::time::Instant;

/// Where a connection is in its request/response life cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Registered, no bytes received yet. Idle connections may stay here
    /// indefinitely — they cost a file descriptor, not a thread.
    Accepted,
    /// Partway through the 4-byte length prefix.
    ReadingLen,
    /// Length known; partway through the payload.
    ReadingPayload,
    /// A complete request was handed to the dispatcher; the connection
    /// waits (no read interest) for its response.
    Dispatched,
    /// Response queued; partway through writing it.
    Writing,
    /// Response fully flushed; the connection is finished.
    Done,
}

/// What a readiness-driven read pass produced.
#[derive(Debug)]
pub enum ReadStep {
    /// A complete frame payload; the connection is now
    /// [`ConnState::Dispatched`].
    Frame(Vec<u8>),
    /// The socket ran dry mid-frame; `bytes` arrived during this pass
    /// (zero for a spurious wakeup).
    NeedMore {
        /// Bytes consumed in this pass before `WouldBlock`.
        bytes: usize,
    },
    /// The length prefix promised more than [`MAX_FRAME`]; the value is
    /// the claimed length. The connection should be answered with a
    /// rejection and closed — nothing was allocated.
    TooLarge(u32),
    /// EOF or a hard error: the peer is gone.
    Disconnected,
}

/// What a readiness-driven write pass produced.
#[derive(Debug)]
pub enum WriteStep {
    /// The whole response is flushed; the connection is
    /// [`ConnState::Done`].
    Flushed,
    /// The socket buffer filled mid-response; `bytes` were written this
    /// pass.
    NeedMore {
        /// Bytes written in this pass before `WouldBlock`.
        bytes: usize,
    },
    /// The peer is gone; the remaining bytes are undeliverable.
    Disconnected,
}

/// One connection: the stream, the incremental parse/write cursors, and
/// the bookkeeping the event loop needs (token, timestamps).
pub struct Conn<S> {
    stream: S,
    state: ConnState,
    /// Registration token in the poller (also the completion-routing key).
    pub token: u64,
    /// Last time any byte moved — the idle-sweep clock.
    pub last_activity: Instant,
    /// Set when the request frame completed; latency is measured from
    /// here, mirroring the thread-per-connection path.
    pub received: Option<Instant>,
    len_buf: [u8; 4],
    filled: usize,
    payload: Vec<u8>,
    write_buf: Vec<u8>,
    written: usize,
}

impl<S: Read + Write> Conn<S> {
    /// Wraps a (nonblocking) stream in the [`ConnState::Accepted`] state.
    pub fn new(stream: S, token: u64, now: Instant) -> Conn<S> {
        Conn {
            stream,
            state: ConnState::Accepted,
            token,
            last_activity: now,
            received: None,
            len_buf: [0; 4],
            filled: 0,
            payload: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> ConnState {
        self.state
    }

    /// The underlying stream (the server needs its raw fd).
    pub fn stream(&self) -> &S {
        &self.stream
    }

    /// True while the peer has sent part of a frame but not all of it —
    /// the shape a slow-loris attack leaves a connection in, and the one
    /// the idle sweep applies `io_timeout` to. A connection with zero
    /// bytes sent is *idle*, not stalled, and is never swept.
    pub fn mid_frame(&self) -> bool {
        matches!(
            (self.state, self.filled),
            (ConnState::ReadingLen, 1..) | (ConnState::ReadingPayload, _)
        )
    }

    /// True while a queued response is not yet fully flushed.
    pub fn writing(&self) -> bool {
        self.state == ConnState::Writing
    }

    /// Advances the read side as far as the socket allows. Call on every
    /// readable event; level-triggered polling plus reading to
    /// `WouldBlock` means no byte is ever stranded.
    pub fn on_readable(&mut self, now: Instant) -> ReadStep {
        let mut moved = 0usize;
        loop {
            match self.state {
                ConnState::Accepted | ConnState::ReadingLen => {
                    let dst = &mut self.len_buf[self.filled..];
                    match self.stream.read(dst) {
                        Ok(0) => return ReadStep::Disconnected,
                        Ok(n) => {
                            self.filled += n;
                            moved += n;
                            self.state = ConnState::ReadingLen;
                            self.last_activity = now;
                            if self.filled == 4 {
                                let len = u32::from_le_bytes(self.len_buf);
                                if len > MAX_FRAME {
                                    return ReadStep::TooLarge(len);
                                }
                                self.filled = 0;
                                if len == 0 {
                                    self.state = ConnState::Dispatched;
                                    self.received = Some(now);
                                    return ReadStep::Frame(Vec::new());
                                }
                                self.payload = vec![0; len as usize];
                                self.state = ConnState::ReadingPayload;
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            return ReadStep::NeedMore { bytes: moved }
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => return ReadStep::Disconnected,
                    }
                }
                ConnState::ReadingPayload => {
                    let dst = &mut self.payload[self.filled..];
                    match self.stream.read(dst) {
                        Ok(0) => return ReadStep::Disconnected,
                        Ok(n) => {
                            self.filled += n;
                            moved += n;
                            self.last_activity = now;
                            if self.filled == self.payload.len() {
                                self.state = ConnState::Dispatched;
                                self.received = Some(now);
                                self.filled = 0;
                                return ReadStep::Frame(std::mem::take(&mut self.payload));
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            return ReadStep::NeedMore { bytes: moved }
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => return ReadStep::Disconnected,
                    }
                }
                // A readable event after dispatch (e.g. a peer that sends
                // trailing garbage) is ignored; the protocol is one frame
                // per direction per connection.
                ConnState::Dispatched | ConnState::Writing | ConnState::Done => {
                    return ReadStep::NeedMore { bytes: moved }
                }
            }
        }
    }

    /// Queues a response payload (framing is added here) and moves to
    /// [`ConnState::Writing`]. Follow with [`Conn::on_writable`].
    pub fn queue_response(&mut self, payload: &[u8]) {
        debug_assert!(payload.len() as u64 <= MAX_FRAME as u64);
        self.write_buf = Vec::with_capacity(4 + payload.len());
        self.write_buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.write_buf.extend_from_slice(payload);
        self.written = 0;
        self.state = ConnState::Writing;
    }

    /// Advances the write side as far as the socket allows.
    pub fn on_writable(&mut self, now: Instant) -> WriteStep {
        let mut moved = 0usize;
        if self.state != ConnState::Writing {
            return WriteStep::NeedMore { bytes: 0 };
        }
        loop {
            let src = &self.write_buf[self.written..];
            if src.is_empty() {
                self.state = ConnState::Done;
                self.write_buf = Vec::new();
                return WriteStep::Flushed;
            }
            match self.stream.write(src) {
                Ok(0) => return WriteStep::Disconnected,
                Ok(n) => {
                    self.written += n;
                    moved += n;
                    self.last_activity = now;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return WriteStep::NeedMore { bytes: moved }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return WriteStep::Disconnected,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// A scripted stream: reads serve from a queue of chunks (`None` =
    /// `WouldBlock`), writes accept at most `write_cap` bytes per call.
    struct Scripted {
        reads: VecDeque<Option<Vec<u8>>>,
        written: Vec<u8>,
        write_cap: usize,
        write_blocks: VecDeque<bool>,
    }

    impl Scripted {
        fn new(reads: Vec<Option<Vec<u8>>>) -> Scripted {
            Scripted {
                reads: reads.into(),
                written: Vec::new(),
                write_cap: usize::MAX,
                write_blocks: VecDeque::new(),
            }
        }
    }

    impl Read for Scripted {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.reads.pop_front() {
                Some(Some(mut chunk)) => {
                    // Serve at most what was asked; requeue the rest so a
                    // single script chunk can span parse states.
                    let n = chunk.len().min(buf.len());
                    buf[..n].copy_from_slice(&chunk[..n]);
                    if n < chunk.len() {
                        chunk.drain(..n);
                        self.reads.push_front(Some(chunk));
                    }
                    Ok(n)
                }
                Some(None) | None => Err(io::ErrorKind::WouldBlock.into()),
            }
        }
    }

    impl Write for Scripted {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.write_blocks.pop_front().unwrap_or(false) {
                return Err(io::ErrorKind::WouldBlock.into());
            }
            let n = buf.len().min(self.write_cap);
            self.written.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut f = (payload.len() as u32).to_le_bytes().to_vec();
        f.extend_from_slice(payload);
        f
    }

    #[test]
    fn whole_frame_in_one_read_dispatches() {
        let bytes = frame(b"hello");
        let mut c = Conn::new(Scripted::new(vec![Some(bytes)]), 1, Instant::now());
        match c.on_readable(Instant::now()) {
            ReadStep::Frame(p) => assert_eq!(p, b"hello"),
            other => panic!("expected Frame, got {other:?}"),
        }
        assert_eq!(c.state(), ConnState::Dispatched);
        assert!(c.received.is_some());
    }

    #[test]
    fn one_byte_dribble_assembles_the_frame() {
        // Every byte arrives alone, with a WouldBlock between each — the
        // worst-behaved client the protocol allows.
        let bytes = frame(b"dribble");
        let mut script: Vec<Option<Vec<u8>>> = Vec::new();
        for b in &bytes {
            script.push(Some(vec![*b]));
            script.push(None);
        }
        let mut c = Conn::new(Scripted::new(script), 1, Instant::now());
        let mut got = None;
        for _ in 0..bytes.len() + 1 {
            match c.on_readable(Instant::now()) {
                ReadStep::Frame(p) => {
                    got = Some(p);
                    break;
                }
                ReadStep::NeedMore { .. } => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(got.expect("frame must assemble"), b"dribble");
    }

    #[test]
    fn slow_loris_stays_mid_frame_not_dispatched() {
        // Two bytes of length prefix, then silence.
        let mut c = Conn::new(
            Scripted::new(vec![Some(vec![0x10, 0x00]), None]),
            1,
            Instant::now(),
        );
        assert!(!c.mid_frame(), "accepted but idle is not mid-frame");
        match c.on_readable(Instant::now()) {
            ReadStep::NeedMore { bytes } => assert_eq!(bytes, 2),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.state(), ConnState::ReadingLen);
        assert!(c.mid_frame(), "partial prefix is the loris signature");
    }

    #[test]
    fn mid_frame_disconnect_reports_disconnected() {
        let bytes = frame(b"abcdef");
        let half = bytes[..5].to_vec();
        // EOF (Ok(0)) is modeled by an empty chunk.
        let mut c = Conn::new(
            Scripted::new(vec![Some(half), Some(vec![])]),
            1,
            Instant::now(),
        );
        match c.on_readable(Instant::now()) {
            ReadStep::Disconnected => {}
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocation() {
        let huge = (MAX_FRAME + 1).to_le_bytes().to_vec();
        let mut c = Conn::new(Scripted::new(vec![Some(huge)]), 1, Instant::now());
        match c.on_readable(Instant::now()) {
            ReadStep::TooLarge(len) => assert_eq!(len, MAX_FRAME + 1),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn response_writes_incrementally_until_flushed() {
        let mut stream = Scripted::new(vec![]);
        stream.write_cap = 3;
        stream.write_blocks = vec![false, true, false, false, false, false].into();
        let mut c = Conn::new(stream, 1, Instant::now());
        c.queue_response(b"0123456789");
        assert!(c.writing());
        let mut flushed = false;
        for _ in 0..8 {
            match c.on_writable(Instant::now()) {
                WriteStep::Flushed => {
                    flushed = true;
                    break;
                }
                WriteStep::NeedMore { .. } => {}
                WriteStep::Disconnected => panic!("scripted stream never disconnects"),
            }
        }
        assert!(flushed);
        assert_eq!(c.state(), ConnState::Done);
        assert_eq!(c.stream().written, frame(b"0123456789"));
    }

    #[test]
    fn zero_length_frame_dispatches_empty_payload() {
        let mut c = Conn::new(
            Scripted::new(vec![Some(0u32.to_le_bytes().to_vec())]),
            1,
            Instant::now(),
        );
        match c.on_readable(Instant::now()) {
            ReadStep::Frame(p) => assert!(p.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }
}
