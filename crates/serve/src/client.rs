//! The submitting client: one request, retried with seeded-jitter
//! exponential backoff on *retryable* outcomes only — and, given several
//! addresses, ring-aware routing with failover that can't hot-loop.
//!
//! Retryable means the server said so ([`Status::is_retryable`]:
//! overloaded or draining) or the connection itself failed in a way that
//! a healthy server would not produce (refused, reset, timed out). A
//! typed rejection — bad request, deadline exceeded, internal error — is
//! returned immediately; retrying a request the server *answered*
//! negatively only adds load.
//!
//! With more than one address, the client builds the same deterministic
//! [`Ring`] the servers build and dials the request key's *owner* first,
//! so a well-configured cluster answers most requests with zero
//! redirects. Every retryable failure — connect refused, `ShuttingDown`,
//! `Overloaded` — rotates to the next node on the key's ring route,
//! which is exactly the node that would own the key if the failed one
//! left the ring. A [`Status::NotOwner`] redirect (the servers' member
//! list knows better than ours) is followed immediately, once, with the
//! request marked [`Request::relayed`] — and a relayed request is never
//! redirected again, so client↔cluster disagreement degrades to one
//! extra hop, never a loop.
//!
//! Two anti-hot-loop guarantees are pinned by tests here:
//! every backoff delay is at least [`MIN_BACKOFF_MS`] even with a zero
//! `base_backoff` (the old `nanos/2 + rng % (nanos/2+1)` collapsed to a
//! zero-length sleep and a busy reconnect loop), and a single-address
//! client that hits a *draining* server waits at least
//! [`DRAIN_FLOOR_MS`] instead of hammering it with its own
//! `retry_after 0` hint.
//!
//! The jitter stream comes from [`replay_rng::SmallRng`] seeded by
//! [`ClientConfig::seed`], so a test (or a reproduction) observes the
//! exact same delay schedule every run — randomized backoff without
//! nondeterministic tests.

use crate::proto::{read_frame, write_frame, Request, Response, Status};
use crate::ring::Ring;
use replay_rng::SmallRng;
use std::io::{self};
use std::net::TcpStream;
use std::time::Duration;

/// Client tuning. `Default` connects to the default serve address with
/// 8 retries starting at 25 ms.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server addresses, `host:port` each. One address is plain
    /// single-server mode; several enable ring-aware routing (dial the
    /// key's owner first) and failover rotation.
    pub addrs: Vec<String>,
    /// Retry attempts after the first try (0 = try exactly once).
    pub retries: u32,
    /// First backoff delay; doubles each retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Socket read/write timeout per attempt.
    pub io_timeout: Duration,
    /// Jitter seed — same seed, same delay schedule.
    pub seed: u64,
}

/// The default `replay serve` port: "RS" = 0x5253.
pub const DEFAULT_ADDR: &str = "127.0.0.1:21075";

/// Minimum backoff before any reconnect, whatever the configuration
/// says. A zero `base_backoff` used to produce zero-length sleeps — a
/// busy loop of connect attempts against a server that just said it was
/// overloaded.
pub const MIN_BACKOFF_MS: u64 = 1;

/// Minimum wait before re-dialing the *same* server that answered
/// [`Status::ShuttingDown`]. Drain responses carry `retry_after 0`
/// ("retry immediately, elsewhere"); a client with nowhere else to go
/// must not turn that hint into a tight loop against the draining
/// process.
pub const DRAIN_FLOOR_MS: u64 = 10;

impl ClientConfig {
    /// A config for one server address with default tuning.
    pub fn for_addr(addr: impl Into<String>) -> ClientConfig {
        ClientConfig {
            addrs: vec![addr.into()],
            ..ClientConfig::default()
        }
    }
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            addrs: vec![DEFAULT_ADDR.to_string()],
            retries: 8,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(2),
            io_timeout: Duration::from_secs(60),
            seed: 0,
        }
    }
}

/// Why a submission ultimately failed.
#[derive(Debug)]
pub enum ClientError {
    /// The server answered with a terminal (non-retryable) rejection.
    Rejected {
        /// The typed status.
        status: Status,
        /// The server's detail message.
        message: String,
    },
    /// Retries were exhausted; `last` describes the final attempt.
    Exhausted {
        /// Total attempts made (first try + retries).
        attempts: u32,
        /// The last retryable failure.
        last: String,
    },
    /// A non-retryable transport or decode failure.
    Io(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Rejected { status, message } => {
                write!(f, "server rejected request: {status}: {message}")
            }
            ClientError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts (last: {last})")
            }
            ClientError::Io(e) => write!(f, "transport failure: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// What one attempt produced, before retry policy is applied.
enum Attempt {
    Done(Response),
    /// The node said another member owns the key: re-send there, marked
    /// relayed, without sleeping — a redirect is information, not
    /// congestion. Consumes an attempt, so redirects are bounded by the
    /// retry budget even against a confused cluster.
    Redirect {
        owner: String,
        why: String,
    },
    /// Retryable; `floor_ms` is the server's retry-after hint (0 = none)
    /// and `drain` marks a [`Status::ShuttingDown`] answer.
    Retry {
        why: String,
        floor_ms: u64,
        drain: bool,
    },
    Fatal(ClientError),
}

/// A submitting client. Holds the jitter RNG, so reuse one client for a
/// session of submissions.
pub struct Client {
    cfg: ClientConfig,
    rng: SmallRng,
    /// The same deterministic ring the servers build — present only with
    /// more than one address.
    ring: Option<Ring>,
}

impl Client {
    /// A client with the given tuning; the backoff jitter stream is
    /// deterministic in `cfg.seed`.
    pub fn new(mut cfg: ClientConfig) -> Client {
        if cfg.addrs.is_empty() {
            cfg.addrs.push(DEFAULT_ADDR.to_string());
        }
        let ring = if cfg.addrs.len() > 1 {
            Some(Ring::new(cfg.addrs.clone()))
        } else {
            None
        };
        let rng = SmallRng::seed_from_u64(cfg.seed ^ 0x7265_706c_6179_7376); // "replaysv"
        Client { cfg, rng, ring }
    }

    /// The node order this client will try for `req`: the request key's
    /// ring route (owner first) with several addresses, the single
    /// configured address otherwise.
    fn route_for(&self, req: &Request) -> Vec<String> {
        match &self.ring {
            Some(ring) => ring
                .route(req.key())
                .into_iter()
                .map(str::to_string)
                .collect(),
            None => self.cfg.addrs.clone(),
        }
    }

    /// Submits one request, retrying retryable failures with seeded
    /// exponential backoff — rotating through the key's ring route on
    /// failure, following at most bounded `NotOwner` redirects — and
    /// returns the server's Ok response.
    pub fn submit(&mut self, req: &Request) -> Result<Response, ClientError> {
        let route = self.route_for(req);
        let multi = route.len() > 1;
        let mut cursor = 0usize;
        let mut redirect: Option<String> = None;
        let mut last_failure = String::new();
        for attempt in 0..=self.cfg.retries {
            // A redirect target is dialed with `relayed` set; so is any
            // node after a rotation (it may not be the owner, and must
            // serve rather than bounce us onward). The first dial of the
            // ring owner goes un-relayed so a server with a *better*
            // member list can still redirect us once.
            let (target, relayed) = match redirect.take() {
                Some(owner) => (owner, true),
                None => (route[cursor % route.len()].clone(), multi && cursor > 0),
            };
            let mut wire = req.clone();
            wire.relayed = relayed;
            match self.try_once(&target, &wire.encode(), relayed) {
                Attempt::Done(resp) => return Ok(resp),
                Attempt::Fatal(e) => return Err(e),
                Attempt::Redirect { owner, why } => {
                    last_failure = why;
                    redirect = Some(owner);
                }
                Attempt::Retry {
                    why,
                    floor_ms,
                    drain,
                } => {
                    last_failure = why;
                    cursor += 1; // failover: next node on the ring route
                                 // A draining server's hint is "elsewhere, now"; with
                                 // nowhere else to rotate to, wait it out instead.
                    let floor = if drain && !multi {
                        floor_ms.max(DRAIN_FLOOR_MS)
                    } else {
                        floor_ms
                    };
                    if attempt < self.cfg.retries {
                        std::thread::sleep(self.backoff_delay(attempt, floor));
                    }
                }
            }
        }
        Err(ClientError::Exhausted {
            attempts: self.cfg.retries + 1,
            last: last_failure,
        })
    }

    /// One wire round trip against `target`.
    fn try_once(&mut self, target: &str, payload: &[u8], sent_relayed: bool) -> Attempt {
        let mut conn = match TcpStream::connect(target) {
            Ok(c) => c,
            Err(e) if connect_is_retryable(&e) => {
                return Attempt::Retry {
                    why: format!("connect {target}: {e}"),
                    floor_ms: 0,
                    drain: false,
                };
            }
            Err(e) => return Attempt::Fatal(ClientError::Io(format!("connect {target}: {e}"))),
        };
        let _ = conn.set_read_timeout(Some(self.cfg.io_timeout));
        let _ = conn.set_write_timeout(Some(self.cfg.io_timeout));
        let _ = conn.set_nodelay(true);
        if let Err(e) = write_frame(&mut conn, payload) {
            return Attempt::Retry {
                why: format!("send: {e}"),
                floor_ms: 0,
                drain: false,
            };
        }
        let frame = match read_frame(&mut conn) {
            Ok(f) => f,
            // A reset/timeout mid-response usually means the server shed
            // us the hard way (or died); both are worth retrying.
            Err(e) => {
                return Attempt::Retry {
                    why: format!("recv: {e}"),
                    floor_ms: 0,
                    drain: false,
                }
            }
        };
        let resp = match Response::decode(&frame) {
            Ok(r) => r,
            Err(e) => return Attempt::Fatal(ClientError::Io(format!("bad response: {e}"))),
        };
        match resp.status {
            Status::Ok => Attempt::Done(resp),
            Status::NotOwner => match resp.owner_addr() {
                // A server must never redirect a relayed request; if one
                // does anyway (mixed versions, misconfiguration), treat
                // it as congestion — rotate with backoff — rather than
                // following redirects in a circle.
                Some(owner) if !sent_relayed => Attempt::Redirect {
                    owner: owner.to_string(),
                    why: format!("redirected to {owner}"),
                },
                _ => Attempt::Retry {
                    why: "unfollowable NotOwner redirect".to_string(),
                    floor_ms: DRAIN_FLOOR_MS,
                    drain: false,
                },
            },
            s if s.is_retryable() => Attempt::Retry {
                why: format!("{s}: {}", resp.message),
                // The server's hint becomes the floor of the next delay.
                floor_ms: resp.retry_after_ms,
                drain: s == Status::ShuttingDown,
            },
            status => Attempt::Fatal(ClientError::Rejected {
                status,
                message: resp.message,
            }),
        }
    }

    /// The delay before retry `attempt` (0-based): exponential growth
    /// from `base_backoff`, capped at `max_backoff`, with multiplicative
    /// jitter in `[0.5, 1.0]` drawn from the seeded stream. `floor_ms`
    /// (a server hint) lower-bounds the result, and the whole thing is
    /// clamped to at least [`MIN_BACKOFF_MS`] — a zero-length delay is a
    /// busy loop, never an acceptable schedule.
    fn backoff_delay(&mut self, attempt: u32, floor_ms: u64) -> Duration {
        let exp = self
            .cfg
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.cfg.max_backoff);
        let nanos = exp.as_nanos() as u64;
        // jitter in [nanos/2, nanos]: full jitter keeps retrying clients
        // from re-synchronizing into waves.
        let jittered = nanos / 2 + self.rng.next_u64() % (nanos / 2 + 1);
        Duration::from_nanos(
            jittered
                .max(floor_ms.saturating_mul(1_000_000))
                .max(MIN_BACKOFF_MS * 1_000_000),
        )
    }
}

/// Connect failures a healthy, reachable server does not produce — the
/// ones worth retrying because the server may be restarting or draining.
fn connect_is_retryable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::Interrupted
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(seed: u64, n: u32) -> Vec<Duration> {
        let mut c = Client::new(ClientConfig {
            seed,
            ..ClientConfig::default()
        });
        (0..n).map(|i| c.backoff_delay(i, 0)).collect()
    }

    #[test]
    fn backoff_is_deterministic_in_the_seed() {
        assert_eq!(schedule(7, 6), schedule(7, 6), "same seed, same delays");
        assert_ne!(
            schedule(7, 6),
            schedule(8, 6),
            "different seed, different jitter"
        );
    }

    #[test]
    fn backoff_grows_exponentially_within_jitter_bounds() {
        let cfg = ClientConfig::default();
        let mut c = Client::new(cfg.clone());
        for attempt in 0..6 {
            let exp = cfg
                .base_backoff
                .saturating_mul(1 << attempt)
                .min(cfg.max_backoff);
            let d = c.backoff_delay(attempt, 0);
            assert!(d >= exp / 2, "attempt {attempt}: {d:?} < {:?}", exp / 2);
            assert!(d <= exp, "attempt {attempt}: {d:?} > {exp:?}");
        }
    }

    #[test]
    fn backoff_caps_at_max_and_honors_floor() {
        let cfg = ClientConfig::default();
        let mut c = Client::new(cfg.clone());
        let d = c.backoff_delay(30, 0);
        assert!(d <= cfg.max_backoff);
        let floored = c.backoff_delay(0, 5_000);
        assert!(floored >= Duration::from_secs(5));
    }

    #[test]
    fn zero_base_backoff_never_yields_a_zero_delay() {
        // Regression: with base_backoff zero, `nanos/2 + rng % (nanos/2
        // + 1)` collapsed to 0 and submit() busy-looped reconnecting.
        let mut c = Client::new(ClientConfig {
            base_backoff: Duration::ZERO,
            ..ClientConfig::default()
        });
        for attempt in 0..8 {
            let d = c.backoff_delay(attempt, 0);
            assert!(
                d >= Duration::from_millis(MIN_BACKOFF_MS),
                "attempt {attempt}: {d:?} is a busy loop"
            );
        }
    }

    #[test]
    fn drain_floor_constant_is_nonzero() {
        // The ShuttingDown hint is retry_after 0; DRAIN_FLOOR_MS is what
        // keeps a single-address client from hammering a draining server.
        // (The end-to-end behavior is pinned in tests/cluster.rs.)
        const { assert!(DRAIN_FLOOR_MS >= 1) };
        let mut c = Client::new(ClientConfig::default());
        let d = c.backoff_delay(0, DRAIN_FLOOR_MS);
        assert!(d >= Duration::from_millis(DRAIN_FLOOR_MS));
    }

    #[test]
    fn multi_address_client_builds_the_server_ring() {
        let addrs = vec![
            "10.0.0.1:1".to_string(),
            "10.0.0.2:1".to_string(),
            "10.0.0.3:1".to_string(),
        ];
        let c = Client::new(ClientConfig {
            addrs: addrs.clone(),
            ..ClientConfig::default()
        });
        let ring = Ring::new(addrs);
        let req = Request {
            source: crate::proto::Source::Workload("gzip".into()),
            scale: 1000,
            timings: false,
            deadline_ms: 0,
            relayed: false,
        };
        let route = c.route_for(&req);
        let expect: Vec<String> = ring
            .route(req.key())
            .into_iter()
            .map(String::from)
            .collect();
        assert_eq!(route, expect, "client route == server ring route");
        assert_eq!(
            route[0],
            ring.owner(req.key()).unwrap(),
            "owner dialed first"
        );
    }

    #[test]
    fn empty_address_list_falls_back_to_default() {
        let c = Client::new(ClientConfig {
            addrs: Vec::new(),
            ..ClientConfig::default()
        });
        assert_eq!(c.cfg.addrs, vec![DEFAULT_ADDR.to_string()]);
        assert!(c.ring.is_none());
    }
}
