//! The submitting client: one request, retried with seeded-jitter
//! exponential backoff on *retryable* outcomes only.
//!
//! Retryable means the server said so ([`Status::is_retryable`]:
//! overloaded or draining) or the connection itself failed in a way that
//! a healthy server would not produce (refused, reset, timed out). A
//! typed rejection — bad request, deadline exceeded, internal error — is
//! returned immediately; retrying a request the server *answered*
//! negatively only adds load.
//!
//! The jitter stream comes from [`replay_rng::SmallRng`] seeded by
//! [`ClientConfig::seed`], so a test (or a reproduction) observes the
//! exact same delay schedule every run — randomized backoff without
//! nondeterministic tests.

use crate::proto::{read_frame, write_frame, Request, Response, Status};
use replay_rng::SmallRng;
use std::io::{self};
use std::net::TcpStream;
use std::time::Duration;

/// Client tuning. `Default` connects to the default serve address with
/// 8 retries starting at 25 ms.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Retry attempts after the first try (0 = try exactly once).
    pub retries: u32,
    /// First backoff delay; doubles each retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Socket read/write timeout per attempt.
    pub io_timeout: Duration,
    /// Jitter seed — same seed, same delay schedule.
    pub seed: u64,
}

/// The default `replay serve` port: "RS" = 0x5253.
pub const DEFAULT_ADDR: &str = "127.0.0.1:21075";

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            addr: DEFAULT_ADDR.to_string(),
            retries: 8,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(2),
            io_timeout: Duration::from_secs(60),
            seed: 0,
        }
    }
}

/// Why a submission ultimately failed.
#[derive(Debug)]
pub enum ClientError {
    /// The server answered with a terminal (non-retryable) rejection.
    Rejected {
        /// The typed status.
        status: Status,
        /// The server's detail message.
        message: String,
    },
    /// Retries were exhausted; `last` describes the final attempt.
    Exhausted {
        /// Total attempts made (first try + retries).
        attempts: u32,
        /// The last retryable failure.
        last: String,
    },
    /// A non-retryable transport or decode failure.
    Io(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Rejected { status, message } => {
                write!(f, "server rejected request: {status}: {message}")
            }
            ClientError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts (last: {last})")
            }
            ClientError::Io(e) => write!(f, "transport failure: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// What one attempt produced, before retry policy is applied.
enum Attempt {
    Done(Response),
    /// Retryable; `floor_ms` is the server's retry-after hint (0 = none).
    Retry {
        why: String,
        floor_ms: u64,
    },
    Fatal(ClientError),
}

/// A submitting client. Holds the jitter RNG, so reuse one client for a
/// session of submissions.
pub struct Client {
    cfg: ClientConfig,
    rng: SmallRng,
}

impl Client {
    /// A client with the given tuning; the backoff jitter stream is
    /// deterministic in `cfg.seed`.
    pub fn new(cfg: ClientConfig) -> Client {
        let rng = SmallRng::seed_from_u64(cfg.seed ^ 0x7265_706c_6179_7376); // "replaysv"
        Client { cfg, rng }
    }

    /// Submits one request, retrying retryable failures with seeded
    /// exponential backoff, and returns the server's Ok response.
    pub fn submit(&mut self, req: &Request) -> Result<Response, ClientError> {
        let payload = req.encode();
        let mut last_failure = String::new();
        for attempt in 0..=self.cfg.retries {
            match self.try_once(&payload) {
                Attempt::Done(resp) => return Ok(resp),
                Attempt::Fatal(e) => return Err(e),
                Attempt::Retry { why, floor_ms } => {
                    last_failure = why;
                    if attempt < self.cfg.retries {
                        std::thread::sleep(self.backoff_delay(attempt, floor_ms));
                    }
                }
            }
        }
        Err(ClientError::Exhausted {
            attempts: self.cfg.retries + 1,
            last: last_failure,
        })
    }

    /// One wire round trip.
    fn try_once(&mut self, payload: &[u8]) -> Attempt {
        let mut conn = match TcpStream::connect(&self.cfg.addr) {
            Ok(c) => c,
            Err(e) if connect_is_retryable(&e) => {
                return Attempt::Retry {
                    why: format!("connect: {e}"),
                    floor_ms: 0,
                };
            }
            Err(e) => return Attempt::Fatal(ClientError::Io(format!("connect: {e}"))),
        };
        let _ = conn.set_read_timeout(Some(self.cfg.io_timeout));
        let _ = conn.set_write_timeout(Some(self.cfg.io_timeout));
        let _ = conn.set_nodelay(true);
        if let Err(e) = write_frame(&mut conn, payload) {
            return Attempt::Retry {
                why: format!("send: {e}"),
                floor_ms: 0,
            };
        }
        let frame = match read_frame(&mut conn) {
            Ok(f) => f,
            // A reset/timeout mid-response usually means the server shed
            // us the hard way (or died); both are worth retrying.
            Err(e) => {
                return Attempt::Retry {
                    why: format!("recv: {e}"),
                    floor_ms: 0,
                }
            }
        };
        let resp = match Response::decode(&frame) {
            Ok(r) => r,
            Err(e) => return Attempt::Fatal(ClientError::Io(format!("bad response: {e}"))),
        };
        match resp.status {
            Status::Ok => Attempt::Done(resp),
            s if s.is_retryable() => Attempt::Retry {
                why: format!("{s}: {}", resp.message),
                // The server's hint becomes the floor of the next delay.
                floor_ms: resp.retry_after_ms,
            },
            status => Attempt::Fatal(ClientError::Rejected {
                status,
                message: resp.message,
            }),
        }
    }

    /// The delay before retry `attempt` (0-based): exponential growth
    /// from `base_backoff`, capped at `max_backoff`, with multiplicative
    /// jitter in `[0.5, 1.0]` drawn from the seeded stream. `floor_ms`
    /// (a server hint) lower-bounds the result.
    fn backoff_delay(&mut self, attempt: u32, floor_ms: u64) -> Duration {
        let exp = self
            .cfg
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.cfg.max_backoff);
        let nanos = exp.as_nanos() as u64;
        // jitter in [nanos/2, nanos]: full jitter keeps retrying clients
        // from re-synchronizing into waves.
        let jittered = nanos / 2 + self.rng.next_u64() % (nanos / 2 + 1);
        Duration::from_nanos(jittered.max(floor_ms.saturating_mul(1_000_000)))
    }
}

/// Connect failures a healthy, reachable server does not produce — the
/// ones worth retrying because the server may be restarting or draining.
fn connect_is_retryable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::Interrupted
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(seed: u64, n: u32) -> Vec<Duration> {
        let mut c = Client::new(ClientConfig {
            seed,
            ..ClientConfig::default()
        });
        (0..n).map(|i| c.backoff_delay(i, 0)).collect()
    }

    #[test]
    fn backoff_is_deterministic_in_the_seed() {
        assert_eq!(schedule(7, 6), schedule(7, 6), "same seed, same delays");
        assert_ne!(
            schedule(7, 6),
            schedule(8, 6),
            "different seed, different jitter"
        );
    }

    #[test]
    fn backoff_grows_exponentially_within_jitter_bounds() {
        let cfg = ClientConfig::default();
        let mut c = Client::new(cfg.clone());
        for attempt in 0..6 {
            let exp = cfg
                .base_backoff
                .saturating_mul(1 << attempt)
                .min(cfg.max_backoff);
            let d = c.backoff_delay(attempt, 0);
            assert!(d >= exp / 2, "attempt {attempt}: {d:?} < {:?}", exp / 2);
            assert!(d <= exp, "attempt {attempt}: {d:?} > {exp:?}");
        }
    }

    #[test]
    fn backoff_caps_at_max_and_honors_floor() {
        let cfg = ClientConfig::default();
        let mut c = Client::new(cfg.clone());
        let d = c.backoff_delay(30, 0);
        assert!(d <= cfg.max_backoff);
        let floored = c.backoff_delay(0, 5_000);
        assert!(floored >= Duration::from_secs(5));
    }
}
