//! # replay-serve
//!
//! A zero-external-dependency TCP simulation service for the rePLay
//! reproduction: `replay serve` turns one process into a shared
//! simulation endpoint, and `replay submit` sends it work.
//!
//! A request — a workload name or an inline trace file, plus a scale —
//! is answered with the exact bytes `replay report --json` would produce
//! locally: the server dispatches every batch through the same
//! [`replay_sim::report`] renderer and the same deterministic worker
//! pool, so the response is byte-identical to a local run at any
//! `--jobs` count, cold or warm (after stripping the intentionally
//! non-reproducible `store` section — see
//! [`replay_sim::report::strip_store_section`]).
//!
//! The robustness story, end to end:
//!
//! - **Event-driven serve core** — by default one thread holds every
//!   connection as a small state machine ([`conn`]) over a readiness
//!   poller ([`poll`]: a zero-dep raw-syscall `epoll` shim), so tens of
//!   thousands of idle or byte-dribbling clients cost file descriptors,
//!   not blocked OS threads. The original thread-per-connection path is
//!   kept behind [`ServerConfig::event_loop`]` = false` for
//!   differential testing; responses are byte-identical either way.
//! - **Bounded queues, typed shedding** — the intake and work queues are
//!   bounded; a full queue answers [`proto::Status::Overloaded`] with a
//!   retry hint, and a *draining* server answers
//!   [`proto::Status::ShuttingDown`], instead of hanging the connection
//!   ([`queue`]).
//! - **Batching with deduplication** — the dispatcher collects requests
//!   into batches, deduplicates identical ones (one simulation, many
//!   responses), and submits each batch as a single worker-pool run
//!   ([`server`]).
//! - **Deadlines** — a request that sat queued past its deadline is
//!   answered [`proto::Status::DeadlineExceeded`], not simulated for
//!   nobody.
//! - **Seeded-backoff client** — [`client::Client`] retries retryable
//!   failures with exponential backoff whose jitter comes from a seeded
//!   [`replay_rng::SmallRng`], so retry schedules are reproducible under
//!   test.
//! - **Graceful drain** — SIGTERM/ctrl-c ([`signal`]) or the programmatic
//!   flag stops accepting immediately, then every accepted connection is
//!   parsed, simulated, and answered before [`Server::run`] returns.
//! - **Observability** — queue depths, batch sizes, shed/deadline/retry
//!   counts, and per-request latency land in a [`replay_obs::Profile`]
//!   returned from [`Server::run`].
//! - **Cluster mode** — `--peers` shards the request key space over a
//!   deterministic consistent-hash ring ([`ring`]); non-owners redirect
//!   (or proxy) to the owner, nodes replicate warm RPAS artifacts
//!   peer-to-peer (pull-on-miss plus gossip-on-write, [`cluster`]), and
//!   the multi-address client fails over along the same ring without
//!   ever hot-looping.
//!
//! The wire format ([`proto`]) reuses `replay-store`'s little-endian
//! codec and FNV-1a [`replay_store::Digest64`] for request keys and
//! payload checksums: length-prefixed frames, magic + version header,
//! checksum trailer, total (panic-free) decoding.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod cluster;
pub mod conn;
pub mod poll;
pub mod proto;
pub mod queue;
pub mod ring;
pub mod server;
pub mod signal;

pub use client::{Client, ClientConfig, ClientError, DEFAULT_ADDR, DRAIN_FLOOR_MS, MIN_BACKOFF_MS};
pub use cluster::{ClusterConfig, ClusterState};
pub use proto::{Request, Response, Source, Status};
pub use ring::Ring;
pub use server::{ServeStats, Server, ServerConfig};
