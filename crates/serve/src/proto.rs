//! The `replay-serve` wire protocol.
//!
//! Every message is one length-prefixed frame on the TCP stream:
//!
//! ```text
//! [len: u32 LE] [payload: len bytes]
//! ```
//!
//! and every payload reuses `replay-store`'s little-endian [`Writer`] /
//! [`Reader`] codec, opens with a magic + version header, and closes with
//! a trailing FNV-1a checksum of everything before it ([`Digest64`], the
//! same digest the artifact store keys on). The reader side is total:
//! any malformed input — truncation, a bad tag, a checksum mismatch — is
//! a [`WireError`], never a panic, because peers may send anything.
//!
//! A request names either a synthetic workload (by name) or ships a
//! trace file's bytes inline (with their own content digest, which the
//! server also uses as a warm-start cache key). The response carries a
//! typed [`Status`] — overload and shutdown are *data*, not dropped
//! connections — plus the exact `replay report --json` bytes on success.
//!
//! Cluster mode adds two peer-to-peer message pairs on the same framing:
//! [`PeerFetch`] → [`PeerArtifact`] (pull one warm RPAS container from a
//! peer's `.replay-cache`) and [`PeerPush`] → plain [`Response`] ack
//! (gossip a freshly written container to a small fanout of peers), plus
//! the [`Status::NotOwner`] redirect and the [`Request::relayed`] flag
//! that together make redirect loops impossible: a server only ever
//! answers `NotOwner` to a *non-relayed* request, and a failover client
//! only ever re-targets a non-owner with `relayed` set.

use replay_store::{digest_bytes, Digest64, Reader, WireError, Writer};
use std::io::{self, Read, Write};

/// Frame/payload magic: `b"RSV1"` little-endian.
pub const MAGIC: u32 = u32::from_le_bytes(*b"RSV1");

/// Protocol version. Bump on any incompatible payload change.
/// v2: requests carry the cluster `relayed` flag; peer artifact-exchange
/// messages and the `NotOwner` status exist.
pub const VERSION: u16 = 2;

/// Hard ceiling on an artifact class name traveling in a peer message.
/// Real class names ("trace", "frames") are a few bytes; anything longer
/// is hostile input and is rejected before allocation.
pub const MAX_CLASS_LEN: usize = 64;

/// Hard ceiling on one frame's payload, request or response (64 MiB).
/// A length prefix above this is rejected before any allocation.
pub const MAX_FRAME: u32 = 64 << 20;

/// Writes one `[len][payload]` frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one `[len][payload]` frame, rejecting oversized lengths before
/// allocating.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds {MAX_FRAME}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// What to simulate: a named synthetic workload (the server synthesizes
/// or warm-loads the trace via its `TraceStore`), or a trace file shipped
/// inline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Source {
    /// A workload from the synthetic suite, by name.
    Workload(String),
    /// Raw `replay gen` trace-file bytes.
    TraceBytes(Vec<u8>),
}

/// One simulation request: run all four configurations at `scale` and
/// return the `replay-report/v3` JSON (always the generic core model;
/// port-model runs are a local-CLI concern).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The trace to simulate.
    pub source: Source,
    /// Dynamic x86 instruction count (the CLI's `-n`).
    pub scale: u64,
    /// Include wall-time metrics (breaks byte-reproducibility; off for
    /// identity-checked runs).
    pub timings: bool,
    /// Per-request deadline in milliseconds; 0 means the server default.
    /// A request older than its deadline when dispatch begins is answered
    /// with [`Status::DeadlineExceeded`] instead of being simulated.
    pub deadline_ms: u64,
    /// Cluster routing flag: set when the sender has already routed this
    /// request (a client that rotated off the ring owner, or a proxying
    /// peer). A server must serve a relayed request locally — never
    /// answer [`Status::NotOwner`] — which is what bounds every request
    /// to at most one redirect and makes redirect loops impossible.
    /// Excluded from [`Request::key`]: routing does not change identity.
    pub relayed: bool,
}

impl Request {
    /// The request's content key: identical requests digest identically,
    /// which is what batch-local deduplication and the server's inline-
    /// trace cache key on. Inline traces contribute their content digest,
    /// not their bytes, so the key is cheap to compare.
    pub fn key(&self) -> u64 {
        let mut d = Digest64::new();
        d.write_str("replay-serve/request");
        match &self.source {
            Source::Workload(name) => {
                d.write_u8(0);
                d.write_str(name);
            }
            Source::TraceBytes(bytes) => {
                d.write_u8(1);
                d.write_u64(digest_bytes(bytes));
            }
        }
        d.write_u64(self.scale);
        d.write_bool(self.timings);
        d.finish()
    }

    /// Encodes the request payload (checksummed; framing is separate).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u32(MAGIC);
        w.put_u16(VERSION);
        w.put_u8(MSG_REQUEST);
        match &self.source {
            Source::Workload(name) => {
                w.put_u8(0);
                put_str(&mut w, name);
            }
            Source::TraceBytes(bytes) => {
                w.put_u8(1);
                w.put_u32(bytes.len() as u32);
                w.put_bytes(bytes);
                // Content digest so a flipped bit in transit is caught
                // here, with a precise error, not deep in trace decoding.
                w.put_u64(digest_bytes(bytes));
            }
        }
        w.put_u64(self.scale);
        w.put_u8(self.timings as u8);
        w.put_u64(self.deadline_ms);
        w.put_u8(self.relayed as u8);
        seal(w)
    }

    /// Decodes and validates a request payload.
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        Self::decode_fields(open(payload, MSG_REQUEST)?)
    }

    /// Decodes the fields after the header (shared with [`Message`]).
    fn decode_fields(mut r: Reader<'_>) -> Result<Request, WireError> {
        let source = match r.get_u8("source tag")? {
            0 => Source::Workload(get_str(&mut r, "workload name")?),
            1 => {
                let n = r.get_len("trace bytes", 1)?;
                let bytes = r.get_bytes(n, "trace bytes")?.to_vec();
                let digest = r.get_u64("trace digest")?;
                if digest_bytes(&bytes) != digest {
                    return Err(WireError::BadTag {
                        what: "trace digest",
                        value: digest,
                    });
                }
                Source::TraceBytes(bytes)
            }
            t => {
                return Err(WireError::BadTag {
                    what: "source tag",
                    value: t as u64,
                })
            }
        };
        let scale = r.get_u64("scale")?;
        let timings = r.get_u8("timings")? != 0;
        let deadline_ms = r.get_u64("deadline")?;
        let relayed = r.get_u8("relayed")? != 0;
        r.finish()?;
        Ok(Request {
            source,
            scale,
            timings,
            deadline_ms,
            relayed,
        })
    }
}

/// Typed response status. Rejections are data the client can act on:
/// [`Status::is_retryable`] drives the backoff loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The body holds the report JSON.
    Ok,
    /// A bounded queue was full; retry after the hinted delay.
    Overloaded,
    /// The request was malformed or named an unknown workload.
    BadRequest,
    /// The request sat queued past its deadline and was shed unserved.
    DeadlineExceeded,
    /// The server is draining and accepts no new work; retry elsewhere
    /// or after the hinted delay.
    ShuttingDown,
    /// The server failed internally; the message says how.
    Internal,
    /// Cluster redirect: this node does not own the request's ring slot.
    /// The owner's address travels in [`Response::message`]; the client
    /// should resend there (with [`Request::relayed`] set, so the owner —
    /// or any fallback node — serves it rather than redirecting again).
    /// Not retryable in the backoff sense: the redirect is immediate.
    NotOwner,
}

impl Status {
    /// Whether a client should retry (with backoff) on this status.
    /// `NotOwner` is excluded: it is an immediate redirect, not a
    /// transient failure to wait out.
    pub fn is_retryable(self) -> bool {
        matches!(self, Status::Overloaded | Status::ShuttingDown)
    }

    fn to_u8(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::Overloaded => 1,
            Status::BadRequest => 2,
            Status::DeadlineExceeded => 3,
            Status::ShuttingDown => 4,
            Status::Internal => 5,
            Status::NotOwner => 6,
        }
    }

    fn from_u8(v: u8) -> Result<Status, WireError> {
        Ok(match v {
            0 => Status::Ok,
            1 => Status::Overloaded,
            2 => Status::BadRequest,
            3 => Status::DeadlineExceeded,
            4 => Status::ShuttingDown,
            5 => Status::Internal,
            6 => Status::NotOwner,
            t => {
                return Err(WireError::BadTag {
                    what: "status",
                    value: t as u64,
                })
            }
        })
    }
}

impl std::fmt::Display for Status {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Status::Ok => "ok",
            Status::Overloaded => "overloaded",
            Status::BadRequest => "bad request",
            Status::DeadlineExceeded => "deadline exceeded",
            Status::ShuttingDown => "shutting down",
            Status::Internal => "internal error",
            Status::NotOwner => "not owner",
        })
    }
}

/// One response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Outcome.
    pub status: Status,
    /// Human-readable detail for non-Ok statuses (empty on Ok).
    pub message: String,
    /// Backoff hint in milliseconds for retryable statuses (0 = client's
    /// choice).
    pub retry_after_ms: u64,
    /// The `replay report --json` bytes on Ok; empty otherwise.
    pub body: Vec<u8>,
}

impl Response {
    /// A success response carrying the report bytes.
    pub fn ok(body: Vec<u8>) -> Response {
        Response {
            status: Status::Ok,
            message: String::new(),
            retry_after_ms: 0,
            body,
        }
    }

    /// A rejection with a detail message.
    pub fn reject(status: Status, message: impl Into<String>) -> Response {
        Response {
            status,
            message: message.into(),
            retry_after_ms: 0,
            body: Vec::new(),
        }
    }

    /// Sets the retry hint.
    pub fn with_retry_after(mut self, ms: u64) -> Response {
        self.retry_after_ms = ms;
        self
    }

    /// A cluster redirect naming the ring owner's address.
    pub fn not_owner(owner: impl Into<String>) -> Response {
        Response::reject(Status::NotOwner, owner)
    }

    /// The owner address carried by a [`Status::NotOwner`] redirect.
    pub fn owner_addr(&self) -> Option<&str> {
        if self.status == Status::NotOwner && !self.message.is_empty() {
            Some(&self.message)
        } else {
            None
        }
    }

    /// Encodes the response payload (checksummed; framing is separate).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u32(MAGIC);
        w.put_u16(VERSION);
        w.put_u8(MSG_RESPONSE);
        w.put_u8(self.status.to_u8());
        put_str(&mut w, &self.message);
        w.put_u64(self.retry_after_ms);
        w.put_u32(self.body.len() as u32);
        w.put_bytes(&self.body);
        w.put_u64(digest_bytes(&self.body));
        seal(w)
    }

    /// Decodes and validates a response payload.
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        Self::decode_fields(open(payload, MSG_RESPONSE)?)
    }

    /// Decodes the fields after the header (shared with [`Message`]).
    fn decode_fields(mut r: Reader<'_>) -> Result<Response, WireError> {
        let status = Status::from_u8(r.get_u8("status")?)?;
        let message = get_str(&mut r, "message")?;
        let retry_after_ms = r.get_u64("retry hint")?;
        let n = r.get_len("body", 1)?;
        let body = r.get_bytes(n, "body")?.to_vec();
        let digest = r.get_u64("body digest")?;
        if digest_bytes(&body) != digest {
            return Err(WireError::BadTag {
                what: "body digest",
                value: digest,
            });
        }
        r.finish()?;
        Ok(Response {
            status,
            message,
            retry_after_ms,
            body,
        })
    }
}

/// A peer asking another node for one warm artifact from its store:
/// "do you hold `{class}-{key:016x}.rpa`?" The reply is a
/// [`PeerArtifact`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerFetch {
    /// Artifact class name ("trace", "frames", …).
    pub class: String,
    /// Artifact content key (the store's file-name key).
    pub key: u64,
}

impl PeerFetch {
    /// Encodes the fetch payload (checksummed; framing is separate).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = header(MSG_PEER_FETCH);
        put_str(&mut w, &self.class);
        w.put_u64(self.key);
        seal(w)
    }

    /// Decodes and validates a fetch payload.
    pub fn decode(payload: &[u8]) -> Result<PeerFetch, WireError> {
        Self::decode_fields(open(payload, MSG_PEER_FETCH)?)
    }

    fn decode_fields(mut r: Reader<'_>) -> Result<PeerFetch, WireError> {
        let class = get_class(&mut r)?;
        let key = r.get_u64("artifact key")?;
        r.finish()?;
        Ok(PeerFetch { class, key })
    }
}

/// The answer to a [`PeerFetch`]: either the complete RPAS container
/// bytes (exactly as stored on disk, so the receiver re-validates the
/// container's own magic/version/digest/checksum before trusting a
/// byte), or a miss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerArtifact {
    /// Echo of the requested class.
    pub class: String,
    /// Echo of the requested key.
    pub key: u64,
    /// The raw `.rpa` container bytes; empty on a miss.
    pub container: Vec<u8>,
}

impl PeerArtifact {
    /// True when the peer held the artifact.
    pub fn found(&self) -> bool {
        !self.container.is_empty()
    }

    /// Encodes the artifact payload (checksummed; framing is separate).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = header(MSG_PEER_ARTIFACT);
        put_str(&mut w, &self.class);
        w.put_u64(self.key);
        w.put_u32(self.container.len() as u32);
        w.put_bytes(&self.container);
        seal(w)
    }

    /// Decodes and validates an artifact payload.
    pub fn decode(payload: &[u8]) -> Result<PeerArtifact, WireError> {
        Self::decode_fields(open(payload, MSG_PEER_ARTIFACT)?)
    }

    fn decode_fields(mut r: Reader<'_>) -> Result<PeerArtifact, WireError> {
        let class = get_class(&mut r)?;
        let key = r.get_u64("artifact key")?;
        let n = r.get_len("container", 1)?;
        let container = r.get_bytes(n, "container")?.to_vec();
        r.finish()?;
        Ok(PeerArtifact {
            class,
            key,
            container,
        })
    }
}

/// Write-time gossip: a node that just persisted a fresh artifact pushes
/// the container to a small fanout of ring successors so a later
/// failover lands warm. The receiver answers with a plain [`Response`]
/// ack and re-validates the container before admitting it to its store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerPush {
    /// Artifact class name.
    pub class: String,
    /// Artifact content key.
    pub key: u64,
    /// The raw `.rpa` container bytes (never empty).
    pub container: Vec<u8>,
}

impl PeerPush {
    /// Encodes the push payload (checksummed; framing is separate).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = header(MSG_PEER_PUSH);
        put_str(&mut w, &self.class);
        w.put_u64(self.key);
        w.put_u32(self.container.len() as u32);
        w.put_bytes(&self.container);
        seal(w)
    }

    /// Decodes and validates a push payload.
    pub fn decode(payload: &[u8]) -> Result<PeerPush, WireError> {
        Self::decode_fields(open(payload, MSG_PEER_PUSH)?)
    }

    fn decode_fields(mut r: Reader<'_>) -> Result<PeerPush, WireError> {
        let class = get_class(&mut r)?;
        let key = r.get_u64("artifact key")?;
        let n = r.get_len("container", 1)?;
        if n == 0 {
            return Err(WireError::BadLength {
                what: "container",
                len: 0,
            });
        }
        let container = r.get_bytes(n, "container")?.to_vec();
        r.finish()?;
        Ok(PeerPush {
            class,
            key,
            container,
        })
    }
}

/// Any inbound payload, dispatched by the kind byte in the header. This
/// is what a server front decodes: client requests and peer traffic
/// arrive on the same listener.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// A client simulation request.
    Request(Request),
    /// A response (client-side decode; servers don't receive these).
    Response(Response),
    /// A peer asking for an artifact.
    PeerFetch(PeerFetch),
    /// A peer answering with an artifact (or a miss).
    PeerArtifact(PeerArtifact),
    /// A peer gossiping a fresh artifact.
    PeerPush(PeerPush),
}

impl Message {
    /// Decodes any valid payload, dispatching on the header's kind byte.
    pub fn decode(payload: &[u8]) -> Result<Message, WireError> {
        let (kind, r) = open_any(payload)?;
        Ok(match kind {
            MSG_REQUEST => Message::Request(Request::decode_fields(r)?),
            MSG_RESPONSE => Message::Response(Response::decode_fields(r)?),
            MSG_PEER_FETCH => Message::PeerFetch(PeerFetch::decode_fields(r)?),
            MSG_PEER_ARTIFACT => Message::PeerArtifact(PeerArtifact::decode_fields(r)?),
            MSG_PEER_PUSH => Message::PeerPush(PeerPush::decode_fields(r)?),
            t => {
                return Err(WireError::BadTag {
                    what: "message kind",
                    value: t as u64,
                })
            }
        })
    }
}

const MSG_REQUEST: u8 = 1;
const MSG_RESPONSE: u8 = 2;
const MSG_PEER_FETCH: u8 = 3;
const MSG_PEER_ARTIFACT: u8 = 4;
const MSG_PEER_PUSH: u8 = 5;

/// Starts a payload with the shared magic/version/kind header.
fn header(kind: u8) -> Writer {
    let mut w = Writer::new();
    w.put_u32(MAGIC);
    w.put_u16(VERSION);
    w.put_u8(kind);
    w
}

/// Reads an artifact class name, rejecting hostile lengths before any
/// allocation the length would size.
fn get_class(r: &mut Reader) -> Result<String, WireError> {
    let n = r.get_len("artifact class", 1)?;
    if n == 0 || n > MAX_CLASS_LEN {
        return Err(WireError::BadLength {
            what: "artifact class",
            len: n as u64,
        });
    }
    let bytes = r.get_bytes(n, "artifact class")?;
    String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadTag {
        what: "artifact class",
        value: u64::MAX,
    })
}

fn put_str(w: &mut Writer, s: &str) {
    w.put_u32(s.len() as u32);
    w.put_bytes(s.as_bytes());
}

fn get_str(r: &mut Reader, what: &'static str) -> Result<String, WireError> {
    let n = r.get_len(what, 1)?;
    let bytes = r.get_bytes(n, what)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadTag {
        what,
        value: u64::MAX,
    })
}

/// Appends the whole-payload checksum.
fn seal(w: Writer) -> Vec<u8> {
    let mut body = w.into_bytes();
    let checksum = digest_bytes(&body);
    body.extend_from_slice(&checksum.to_le_bytes());
    body
}

/// Verifies magic, version, and the trailing checksum; returns the kind
/// byte and a reader positioned after the header, covering everything
/// before the checksum.
fn open_any(payload: &[u8]) -> Result<(u8, Reader<'_>), WireError> {
    if payload.len() < 8 {
        return Err(WireError::UnexpectedEof { what: "payload" });
    }
    let (body, tail) = payload.split_at(payload.len() - 8);
    let mut checksum_bytes = [0u8; 8];
    checksum_bytes.copy_from_slice(tail);
    if digest_bytes(body) != u64::from_le_bytes(checksum_bytes) {
        return Err(WireError::BadTag {
            what: "payload checksum",
            value: u64::from_le_bytes(checksum_bytes),
        });
    }
    let mut r = Reader::new(body);
    let magic = r.get_u32("magic")?;
    if magic != MAGIC {
        return Err(WireError::BadTag {
            what: "magic",
            value: magic as u64,
        });
    }
    let version = r.get_u16("version")?;
    if version != VERSION {
        return Err(WireError::BadTag {
            what: "version",
            value: version as u64,
        });
    }
    let kind = r.get_u8("message kind")?;
    Ok((kind, r))
}

/// [`open_any`] plus a kind check, for single-kind decoders.
fn open<'a>(payload: &'a [u8], expect_kind: u8) -> Result<Reader<'a>, WireError> {
    let (kind, r) = open_any(payload)?;
    if kind != expect_kind {
        return Err(WireError::BadTag {
            what: "message kind",
            value: kind as u64,
        });
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_both_sources() {
        let named = Request {
            source: Source::Workload("gzip".into()),
            scale: 30_000,
            timings: false,
            deadline_ms: 0,
            relayed: false,
        };
        assert_eq!(Request::decode(&named.encode()).unwrap(), named);
        let inline = Request {
            source: Source::TraceBytes(vec![1, 2, 3, 4, 5]),
            scale: 100,
            timings: true,
            deadline_ms: 2_500,
            relayed: true,
        };
        assert_eq!(Request::decode(&inline.encode()).unwrap(), inline);
    }

    #[test]
    fn response_round_trips() {
        let ok = Response::ok(b"{\"schema\":\"replay-report/v3\"}".to_vec());
        assert_eq!(Response::decode(&ok.encode()).unwrap(), ok);
        let shed = Response::reject(Status::Overloaded, "queue full").with_retry_after(40);
        let back = Response::decode(&shed.encode()).unwrap();
        assert_eq!(back.status, Status::Overloaded);
        assert_eq!(back.retry_after_ms, 40);
        assert!(back.status.is_retryable());
        assert!(!Status::BadRequest.is_retryable());
        assert!(Status::ShuttingDown.is_retryable());
    }

    #[test]
    fn corruption_is_an_error_not_a_panic() {
        let mut bytes = Request {
            source: Source::Workload("gzip".into()),
            scale: 1,
            timings: false,
            deadline_ms: 0,
            relayed: false,
        }
        .encode();
        // Flip one bit anywhere: the payload checksum catches it.
        bytes[9] ^= 0x40;
        assert!(Request::decode(&bytes).is_err());
        // Truncation at every prefix length must error, never panic.
        let good = Response::ok(vec![7; 32]).encode();
        for cut in 0..good.len() {
            assert!(Response::decode(&good[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn inline_trace_digest_mismatch_rejected() {
        let req = Request {
            source: Source::TraceBytes(vec![9; 64]),
            scale: 10,
            timings: false,
            deadline_ms: 0,
            relayed: false,
        };
        let mut bytes = req.encode();
        // Corrupt a trace byte AND fix up the outer checksum, leaving the
        // inner content digest stale — the layered check still catches it.
        let body_len = bytes.len() - 8;
        bytes[20] ^= 1;
        let fixed = digest_bytes(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&fixed);
        assert!(matches!(
            Request::decode(&bytes),
            Err(WireError::BadTag {
                what: "trace digest",
                ..
            })
        ));
    }

    #[test]
    fn request_key_distinguishes_what_matters() {
        let base = Request {
            source: Source::Workload("gzip".into()),
            scale: 1000,
            timings: false,
            deadline_ms: 0,
            relayed: false,
        };
        let mut other = base.clone();
        assert_eq!(base.key(), other.key());
        other.deadline_ms = 99; // deadlines do not affect identity
        assert_eq!(base.key(), other.key());
        other.relayed = true; // routing does not affect identity
        assert_eq!(base.key(), other.key());
        other.scale = 2000;
        assert_ne!(base.key(), other.key());
        let mut named = base.clone();
        named.source = Source::Workload("eon".into());
        assert_ne!(base.key(), named.key());
    }

    #[test]
    fn peer_messages_round_trip() {
        let fetch = PeerFetch {
            class: "trace".into(),
            key: 0xDEAD_BEEF_CAFE_F00D,
        };
        assert_eq!(PeerFetch::decode(&fetch.encode()).unwrap(), fetch);

        let hit = PeerArtifact {
            class: "trace".into(),
            key: 7,
            container: vec![0x52, 0x50, 0x41, 0x53, 1, 2, 3],
        };
        assert!(hit.found());
        assert_eq!(PeerArtifact::decode(&hit.encode()).unwrap(), hit);
        let miss = PeerArtifact {
            class: "frames".into(),
            key: 7,
            container: Vec::new(),
        };
        assert!(!miss.found());
        assert_eq!(PeerArtifact::decode(&miss.encode()).unwrap(), miss);

        let push = PeerPush {
            class: "trace".into(),
            key: 9,
            container: vec![1; 128],
        };
        assert_eq!(PeerPush::decode(&push.encode()).unwrap(), push);
    }

    #[test]
    fn message_dispatches_every_kind() {
        let req = Request {
            source: Source::Workload("mcf".into()),
            scale: 5,
            timings: false,
            deadline_ms: 0,
            relayed: true,
        };
        assert_eq!(
            Message::decode(&req.encode()).unwrap(),
            Message::Request(req)
        );
        let resp = Response::not_owner("10.0.0.3:21075");
        let back = Message::decode(&resp.encode()).unwrap();
        match &back {
            Message::Response(r) => {
                assert_eq!(r.status, Status::NotOwner);
                assert_eq!(r.owner_addr(), Some("10.0.0.3:21075"));
                assert!(
                    !r.status.is_retryable(),
                    "NotOwner is a redirect, not a retry"
                );
            }
            other => panic!("wrong kind: {other:?}"),
        }
        let fetch = PeerFetch {
            class: "trace".into(),
            key: 1,
        };
        assert_eq!(
            Message::decode(&fetch.encode()).unwrap(),
            Message::PeerFetch(fetch)
        );
        let art = PeerArtifact {
            class: "trace".into(),
            key: 1,
            container: vec![9; 16],
        };
        assert_eq!(
            Message::decode(&art.encode()).unwrap(),
            Message::PeerArtifact(art)
        );
        let push = PeerPush {
            class: "trace".into(),
            key: 1,
            container: vec![9; 16],
        };
        assert_eq!(
            Message::decode(&push.encode()).unwrap(),
            Message::PeerPush(push)
        );
    }

    #[test]
    fn peer_message_truncation_is_an_error_not_a_panic() {
        let encoded: [Vec<u8>; 3] = [
            PeerFetch {
                class: "trace".into(),
                key: 3,
            }
            .encode(),
            PeerArtifact {
                class: "trace".into(),
                key: 3,
                container: vec![5; 64],
            }
            .encode(),
            PeerPush {
                class: "trace".into(),
                key: 3,
                container: vec![5; 64],
            }
            .encode(),
        ];
        for good in &encoded {
            for cut in 0..good.len() {
                assert!(Message::decode(&good[..cut]).is_err(), "cut {cut}");
            }
        }
    }

    #[test]
    fn peer_message_hostile_lengths_rejected() {
        // A class-name length above MAX_CLASS_LEN is rejected even when
        // the checksum is valid (a hostile peer can seal anything).
        let mut w = Writer::new();
        w.put_u32(MAGIC);
        w.put_u16(VERSION);
        w.put_u8(MSG_PEER_FETCH);
        w.put_u32((MAX_CLASS_LEN + 1) as u32);
        w.put_bytes(&[b'x'; MAX_CLASS_LEN + 1]);
        w.put_u64(3);
        let bytes = seal(w);
        assert!(matches!(
            PeerFetch::decode(&bytes),
            Err(WireError::BadLength {
                what: "artifact class",
                ..
            })
        ));

        // An empty class is no better.
        let mut w = Writer::new();
        w.put_u32(MAGIC);
        w.put_u16(VERSION);
        w.put_u8(MSG_PEER_FETCH);
        w.put_u32(0);
        w.put_u64(3);
        let bytes = seal(w);
        assert!(PeerFetch::decode(&bytes).is_err());

        // A container length far past the buffer is rejected before any
        // allocation it would size.
        let mut w = Writer::new();
        w.put_u32(MAGIC);
        w.put_u16(VERSION);
        w.put_u8(MSG_PEER_ARTIFACT);
        put_str(&mut w, "trace");
        w.put_u64(3);
        w.put_u32(u32::MAX);
        let bytes = seal(w);
        assert!(matches!(
            PeerArtifact::decode(&bytes),
            Err(WireError::BadLength {
                what: "container",
                ..
            })
        ));

        // An empty push container is hostile: pushes always carry bytes.
        let mut w = Writer::new();
        w.put_u32(MAGIC);
        w.put_u16(VERSION);
        w.put_u8(MSG_PEER_PUSH);
        put_str(&mut w, "trace");
        w.put_u64(3);
        w.put_u32(0);
        let bytes = seal(w);
        assert!(matches!(
            PeerPush::decode(&bytes),
            Err(WireError::BadLength {
                what: "container",
                len: 0,
            })
        ));

        // Non-UTF-8 class bytes are rejected.
        let mut w = Writer::new();
        w.put_u32(MAGIC);
        w.put_u16(VERSION);
        w.put_u8(MSG_PEER_FETCH);
        w.put_u32(2);
        w.put_bytes(&[0xFF, 0xFE]);
        w.put_u64(3);
        let bytes = seal(w);
        assert!(PeerFetch::decode(&bytes).is_err());

        // An unknown kind byte under a valid checksum is a BadTag.
        let mut w = Writer::new();
        w.put_u32(MAGIC);
        w.put_u16(VERSION);
        w.put_u8(200);
        let bytes = seal(w);
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::BadTag {
                what: "message kind",
                value: 200,
            })
        ));
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let payload = vec![0xAB; 1024];
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let back = read_frame(&mut &buf[..]).unwrap();
        assert_eq!(back, payload);
        // An adversarial length prefix is rejected before allocation.
        let huge = (MAX_FRAME + 1).to_le_bytes();
        assert!(read_frame(&mut &huge[..]).is_err());
    }
}
