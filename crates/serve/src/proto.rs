//! The `replay-serve` wire protocol.
//!
//! Every message is one length-prefixed frame on the TCP stream:
//!
//! ```text
//! [len: u32 LE] [payload: len bytes]
//! ```
//!
//! and every payload reuses `replay-store`'s little-endian [`Writer`] /
//! [`Reader`] codec, opens with a magic + version header, and closes with
//! a trailing FNV-1a checksum of everything before it ([`Digest64`], the
//! same digest the artifact store keys on). The reader side is total:
//! any malformed input — truncation, a bad tag, a checksum mismatch — is
//! a [`WireError`], never a panic, because peers may send anything.
//!
//! A request names either a synthetic workload (by name) or ships a
//! trace file's bytes inline (with their own content digest, which the
//! server also uses as a warm-start cache key). The response carries a
//! typed [`Status`] — overload and shutdown are *data*, not dropped
//! connections — plus the exact `replay report --json` bytes on success.

use replay_store::{digest_bytes, Digest64, Reader, WireError, Writer};
use std::io::{self, Read, Write};

/// Frame/payload magic: `b"RSV1"` little-endian.
pub const MAGIC: u32 = u32::from_le_bytes(*b"RSV1");

/// Protocol version. Bump on any incompatible payload change.
pub const VERSION: u16 = 1;

/// Hard ceiling on one frame's payload, request or response (64 MiB).
/// A length prefix above this is rejected before any allocation.
pub const MAX_FRAME: u32 = 64 << 20;

/// Writes one `[len][payload]` frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one `[len][payload]` frame, rejecting oversized lengths before
/// allocating.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds {MAX_FRAME}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// What to simulate: a named synthetic workload (the server synthesizes
/// or warm-loads the trace via its `TraceStore`), or a trace file shipped
/// inline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Source {
    /// A workload from the synthetic suite, by name.
    Workload(String),
    /// Raw `replay gen` trace-file bytes.
    TraceBytes(Vec<u8>),
}

/// One simulation request: run all four configurations at `scale` and
/// return the `replay-report/v3` JSON (always the generic core model;
/// port-model runs are a local-CLI concern).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The trace to simulate.
    pub source: Source,
    /// Dynamic x86 instruction count (the CLI's `-n`).
    pub scale: u64,
    /// Include wall-time metrics (breaks byte-reproducibility; off for
    /// identity-checked runs).
    pub timings: bool,
    /// Per-request deadline in milliseconds; 0 means the server default.
    /// A request older than its deadline when dispatch begins is answered
    /// with [`Status::DeadlineExceeded`] instead of being simulated.
    pub deadline_ms: u64,
}

impl Request {
    /// The request's content key: identical requests digest identically,
    /// which is what batch-local deduplication and the server's inline-
    /// trace cache key on. Inline traces contribute their content digest,
    /// not their bytes, so the key is cheap to compare.
    pub fn key(&self) -> u64 {
        let mut d = Digest64::new();
        d.write_str("replay-serve/request");
        match &self.source {
            Source::Workload(name) => {
                d.write_u8(0);
                d.write_str(name);
            }
            Source::TraceBytes(bytes) => {
                d.write_u8(1);
                d.write_u64(digest_bytes(bytes));
            }
        }
        d.write_u64(self.scale);
        d.write_bool(self.timings);
        d.finish()
    }

    /// Encodes the request payload (checksummed; framing is separate).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u32(MAGIC);
        w.put_u16(VERSION);
        w.put_u8(MSG_REQUEST);
        match &self.source {
            Source::Workload(name) => {
                w.put_u8(0);
                put_str(&mut w, name);
            }
            Source::TraceBytes(bytes) => {
                w.put_u8(1);
                w.put_u32(bytes.len() as u32);
                w.put_bytes(bytes);
                // Content digest so a flipped bit in transit is caught
                // here, with a precise error, not deep in trace decoding.
                w.put_u64(digest_bytes(bytes));
            }
        }
        w.put_u64(self.scale);
        w.put_u8(self.timings as u8);
        w.put_u64(self.deadline_ms);
        seal(w)
    }

    /// Decodes and validates a request payload.
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut r = open(payload, MSG_REQUEST)?;
        let source = match r.get_u8("source tag")? {
            0 => Source::Workload(get_str(&mut r, "workload name")?),
            1 => {
                let n = r.get_len("trace bytes", 1)?;
                let bytes = r.get_bytes(n, "trace bytes")?.to_vec();
                let digest = r.get_u64("trace digest")?;
                if digest_bytes(&bytes) != digest {
                    return Err(WireError::BadTag {
                        what: "trace digest",
                        value: digest,
                    });
                }
                Source::TraceBytes(bytes)
            }
            t => {
                return Err(WireError::BadTag {
                    what: "source tag",
                    value: t as u64,
                })
            }
        };
        let scale = r.get_u64("scale")?;
        let timings = r.get_u8("timings")? != 0;
        let deadline_ms = r.get_u64("deadline")?;
        r.finish()?;
        Ok(Request {
            source,
            scale,
            timings,
            deadline_ms,
        })
    }
}

/// Typed response status. Rejections are data the client can act on:
/// [`Status::is_retryable`] drives the backoff loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The body holds the report JSON.
    Ok,
    /// A bounded queue was full; retry after the hinted delay.
    Overloaded,
    /// The request was malformed or named an unknown workload.
    BadRequest,
    /// The request sat queued past its deadline and was shed unserved.
    DeadlineExceeded,
    /// The server is draining and accepts no new work; retry elsewhere
    /// or after the hinted delay.
    ShuttingDown,
    /// The server failed internally; the message says how.
    Internal,
}

impl Status {
    /// Whether a client should retry (with backoff) on this status.
    pub fn is_retryable(self) -> bool {
        matches!(self, Status::Overloaded | Status::ShuttingDown)
    }

    fn to_u8(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::Overloaded => 1,
            Status::BadRequest => 2,
            Status::DeadlineExceeded => 3,
            Status::ShuttingDown => 4,
            Status::Internal => 5,
        }
    }

    fn from_u8(v: u8) -> Result<Status, WireError> {
        Ok(match v {
            0 => Status::Ok,
            1 => Status::Overloaded,
            2 => Status::BadRequest,
            3 => Status::DeadlineExceeded,
            4 => Status::ShuttingDown,
            5 => Status::Internal,
            t => {
                return Err(WireError::BadTag {
                    what: "status",
                    value: t as u64,
                })
            }
        })
    }
}

impl std::fmt::Display for Status {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Status::Ok => "ok",
            Status::Overloaded => "overloaded",
            Status::BadRequest => "bad request",
            Status::DeadlineExceeded => "deadline exceeded",
            Status::ShuttingDown => "shutting down",
            Status::Internal => "internal error",
        })
    }
}

/// One response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Outcome.
    pub status: Status,
    /// Human-readable detail for non-Ok statuses (empty on Ok).
    pub message: String,
    /// Backoff hint in milliseconds for retryable statuses (0 = client's
    /// choice).
    pub retry_after_ms: u64,
    /// The `replay report --json` bytes on Ok; empty otherwise.
    pub body: Vec<u8>,
}

impl Response {
    /// A success response carrying the report bytes.
    pub fn ok(body: Vec<u8>) -> Response {
        Response {
            status: Status::Ok,
            message: String::new(),
            retry_after_ms: 0,
            body,
        }
    }

    /// A rejection with a detail message.
    pub fn reject(status: Status, message: impl Into<String>) -> Response {
        Response {
            status,
            message: message.into(),
            retry_after_ms: 0,
            body: Vec::new(),
        }
    }

    /// Sets the retry hint.
    pub fn with_retry_after(mut self, ms: u64) -> Response {
        self.retry_after_ms = ms;
        self
    }

    /// Encodes the response payload (checksummed; framing is separate).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u32(MAGIC);
        w.put_u16(VERSION);
        w.put_u8(MSG_RESPONSE);
        w.put_u8(self.status.to_u8());
        put_str(&mut w, &self.message);
        w.put_u64(self.retry_after_ms);
        w.put_u32(self.body.len() as u32);
        w.put_bytes(&self.body);
        w.put_u64(digest_bytes(&self.body));
        seal(w)
    }

    /// Decodes and validates a response payload.
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let mut r = open(payload, MSG_RESPONSE)?;
        let status = Status::from_u8(r.get_u8("status")?)?;
        let message = get_str(&mut r, "message")?;
        let retry_after_ms = r.get_u64("retry hint")?;
        let n = r.get_len("body", 1)?;
        let body = r.get_bytes(n, "body")?.to_vec();
        let digest = r.get_u64("body digest")?;
        if digest_bytes(&body) != digest {
            return Err(WireError::BadTag {
                what: "body digest",
                value: digest,
            });
        }
        r.finish()?;
        Ok(Response {
            status,
            message,
            retry_after_ms,
            body,
        })
    }
}

const MSG_REQUEST: u8 = 1;
const MSG_RESPONSE: u8 = 2;

fn put_str(w: &mut Writer, s: &str) {
    w.put_u32(s.len() as u32);
    w.put_bytes(s.as_bytes());
}

fn get_str(r: &mut Reader, what: &'static str) -> Result<String, WireError> {
    let n = r.get_len(what, 1)?;
    let bytes = r.get_bytes(n, what)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadTag {
        what,
        value: u64::MAX,
    })
}

/// Appends the whole-payload checksum.
fn seal(w: Writer) -> Vec<u8> {
    let mut body = w.into_bytes();
    let checksum = digest_bytes(&body);
    body.extend_from_slice(&checksum.to_le_bytes());
    body
}

/// Verifies magic, version, kind, and the trailing checksum; returns a
/// reader positioned after the header, covering everything before the
/// checksum.
fn open<'a>(payload: &'a [u8], expect_kind: u8) -> Result<Reader<'a>, WireError> {
    if payload.len() < 8 {
        return Err(WireError::UnexpectedEof { what: "payload" });
    }
    let (body, tail) = payload.split_at(payload.len() - 8);
    let mut checksum_bytes = [0u8; 8];
    checksum_bytes.copy_from_slice(tail);
    if digest_bytes(body) != u64::from_le_bytes(checksum_bytes) {
        return Err(WireError::BadTag {
            what: "payload checksum",
            value: u64::from_le_bytes(checksum_bytes),
        });
    }
    let mut r = Reader::new(body);
    let magic = r.get_u32("magic")?;
    if magic != MAGIC {
        return Err(WireError::BadTag {
            what: "magic",
            value: magic as u64,
        });
    }
    let version = r.get_u16("version")?;
    if version != VERSION {
        return Err(WireError::BadTag {
            what: "version",
            value: version as u64,
        });
    }
    let kind = r.get_u8("message kind")?;
    if kind != expect_kind {
        return Err(WireError::BadTag {
            what: "message kind",
            value: kind as u64,
        });
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_both_sources() {
        let named = Request {
            source: Source::Workload("gzip".into()),
            scale: 30_000,
            timings: false,
            deadline_ms: 0,
        };
        assert_eq!(Request::decode(&named.encode()).unwrap(), named);
        let inline = Request {
            source: Source::TraceBytes(vec![1, 2, 3, 4, 5]),
            scale: 100,
            timings: true,
            deadline_ms: 2_500,
        };
        assert_eq!(Request::decode(&inline.encode()).unwrap(), inline);
    }

    #[test]
    fn response_round_trips() {
        let ok = Response::ok(b"{\"schema\":\"replay-report/v3\"}".to_vec());
        assert_eq!(Response::decode(&ok.encode()).unwrap(), ok);
        let shed = Response::reject(Status::Overloaded, "queue full").with_retry_after(40);
        let back = Response::decode(&shed.encode()).unwrap();
        assert_eq!(back.status, Status::Overloaded);
        assert_eq!(back.retry_after_ms, 40);
        assert!(back.status.is_retryable());
        assert!(!Status::BadRequest.is_retryable());
        assert!(Status::ShuttingDown.is_retryable());
    }

    #[test]
    fn corruption_is_an_error_not_a_panic() {
        let mut bytes = Request {
            source: Source::Workload("gzip".into()),
            scale: 1,
            timings: false,
            deadline_ms: 0,
        }
        .encode();
        // Flip one bit anywhere: the payload checksum catches it.
        bytes[9] ^= 0x40;
        assert!(Request::decode(&bytes).is_err());
        // Truncation at every prefix length must error, never panic.
        let good = Response::ok(vec![7; 32]).encode();
        for cut in 0..good.len() {
            assert!(Response::decode(&good[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn inline_trace_digest_mismatch_rejected() {
        let req = Request {
            source: Source::TraceBytes(vec![9; 64]),
            scale: 10,
            timings: false,
            deadline_ms: 0,
        };
        let mut bytes = req.encode();
        // Corrupt a trace byte AND fix up the outer checksum, leaving the
        // inner content digest stale — the layered check still catches it.
        let body_len = bytes.len() - 8;
        bytes[20] ^= 1;
        let fixed = digest_bytes(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&fixed);
        assert!(matches!(
            Request::decode(&bytes),
            Err(WireError::BadTag {
                what: "trace digest",
                ..
            })
        ));
    }

    #[test]
    fn request_key_distinguishes_what_matters() {
        let base = Request {
            source: Source::Workload("gzip".into()),
            scale: 1000,
            timings: false,
            deadline_ms: 0,
        };
        let mut other = base.clone();
        assert_eq!(base.key(), other.key());
        other.deadline_ms = 99; // deadlines do not affect identity
        assert_eq!(base.key(), other.key());
        other.scale = 2000;
        assert_ne!(base.key(), other.key());
        let mut named = base.clone();
        named.source = Source::Workload("eon".into());
        assert_ne!(base.key(), named.key());
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let payload = vec![0xAB; 1024];
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let back = read_frame(&mut &buf[..]).unwrap();
        assert_eq!(back, payload);
        // An adversarial length prefix is rejected before allocation.
        let huge = (MAX_FRAME + 1).to_le_bytes();
        assert!(read_frame(&mut &huge[..]).is_err());
    }
}
