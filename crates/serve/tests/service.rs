//! End-to-end service tests: a real listener on a loopback port, real
//! clients, real simulations (at a small scale).
//!
//! These tests drive shutdown through [`Server::shutdown_flag`] — never
//! through `signal::trigger()`, whose static flag is shared by every
//! server in this test process. Real signal delivery is exercised by the
//! CI smoke job, where the server is its own process.

use replay_serve::{
    Client, ClientConfig, ClientError, Request, Response, Server, ServerConfig, Source, Status,
};
use replay_sim::report::strip_store_section;
use replay_trace::{workloads, write_trace};
use std::sync::atomic::Ordering;
use std::time::Duration;

const SCALE: usize = 2_000;

/// Binds a server on an ephemeral port, runs it on a background thread,
/// and returns (addr, shutdown flag, join handle for the stats).
fn spawn_server(
    cfg: ServerConfig,
) -> (
    String,
    std::sync::Arc<std::sync::atomic::AtomicBool>,
    std::thread::JoinHandle<replay_serve::ServeStats>,
) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let stop = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.run());
    (addr, stop, handle)
}

fn client(addr: &str, seed: u64) -> Client {
    Client::new(ClientConfig {
        addrs: vec![addr.to_string()],
        seed,
        // Tests that expect success give the client room to outlast any
        // transient overload window.
        retries: 10,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(200),
        ..ClientConfig::default()
    })
}

fn workload_request(name: &str) -> Request {
    Request {
        source: Source::Workload(name.to_string()),
        scale: SCALE as u64,
        timings: false,
        deadline_ms: 0,
        relayed: false,
    }
}

/// The response body with the `store` section stripped: that trailing
/// section reports process-lifetime cache counters and is the one
/// intentionally non-reproducible part of the artifact.
fn body_of(resp: Response) -> String {
    assert_eq!(resp.status, Status::Ok, "{}: {}", resp.status, resp.message);
    strip_store_section(&String::from_utf8(resp.body).expect("report body is UTF-8"))
}

/// The local oracle: the exact bytes `replay report --json` prints.
fn local_report(name: &str, jobs: usize) -> String {
    let w = workloads::by_name(name).expect("known workload");
    let trace = replay_sim::TraceStore::global().segment(&w, 0, SCALE);
    let (_, json) = replay_sim::report::run_report(&trace, jobs, false);
    json
}

#[test]
fn served_bytes_match_local_report_cold_and_warm_at_any_jobs() {
    for jobs in [1, 8] {
        let (addr, stop, handle) = spawn_server(ServerConfig {
            jobs,
            ..ServerConfig::default()
        });
        let mut c = client(&addr, 1);
        // Cold (first request synthesizes the trace) and warm (second hits
        // the process-wide TraceStore) must serve identical bytes.
        let cold = body_of(c.submit(&workload_request("gzip")).expect("cold submit"));
        let warm = body_of(c.submit(&workload_request("gzip")).expect("warm submit"));
        assert_eq!(cold, warm, "jobs={jobs}: warm response drifted");

        let local = local_report("gzip", jobs);
        assert_eq!(
            cold,
            strip_store_section(&local),
            "jobs={jobs}: served bytes differ from a local `replay report --json`"
        );

        stop.store(true, Ordering::SeqCst);
        let stats = handle.join().expect("server thread");
        assert_eq!(stats.served(), 2);
        assert_eq!(stats.shed(), 0);
    }
}

#[test]
fn inline_trace_bytes_serve_the_same_report_as_the_workload_name() {
    let (addr, stop, handle) = spawn_server(ServerConfig::default());

    let w = workloads::by_name("twolf").expect("known workload");
    let trace = w.segment_trace(0, SCALE);
    let mut bytes = Vec::new();
    write_trace(&mut bytes, &trace).expect("encode trace");

    let mut c = client(&addr, 2);
    let by_name = body_of(c.submit(&workload_request("twolf")).expect("by name"));
    let inline_req = Request {
        source: Source::TraceBytes(bytes),
        scale: SCALE as u64,
        timings: false,
        deadline_ms: 0,
        relayed: false,
    };
    let by_bytes = body_of(c.submit(&inline_req).expect("inline cold"));
    assert_eq!(by_name, by_bytes, "inline trace must render identically");
    // Second inline submission hits the digest-keyed warm cache; the
    // response must not change.
    let warm = body_of(c.submit(&inline_req).expect("inline warm"));
    assert_eq!(by_bytes, warm);

    stop.store(true, Ordering::SeqCst);
    let stats = handle.join().expect("server thread");
    assert_eq!(stats.profile.counter("serve.inline_trace.hits"), 1);
}

#[test]
fn unknown_workload_is_a_typed_terminal_rejection() {
    let (addr, stop, handle) = spawn_server(ServerConfig::default());
    let mut c = client(&addr, 3);
    let err = c
        .submit(&workload_request("definitely-not-a-workload"))
        .expect_err("must be rejected");
    match err {
        ClientError::Rejected { status, message } => {
            assert_eq!(status, Status::BadRequest);
            assert!(message.contains("unknown workload"), "{message}");
        }
        other => panic!("expected a typed rejection, got {other}"),
    }
    // Undecodable inline bytes are equally terminal (and must not retry).
    let garbage = Request {
        source: Source::TraceBytes(vec![0xde, 0xad, 0xbe, 0xef]),
        scale: SCALE as u64,
        timings: false,
        deadline_ms: 0,
        relayed: false,
    };
    match c.submit(&garbage).expect_err("garbage must be rejected") {
        ClientError::Rejected { status, .. } => assert_eq!(status, Status::BadRequest),
        other => panic!("expected a typed rejection, got {other}"),
    }
    stop.store(true, Ordering::SeqCst);
    let stats = handle.join().expect("server thread");
    assert_eq!(stats.profile.counter("serve.requests.bad"), 2);
    assert_eq!(stats.served(), 0);
}

#[test]
fn overload_sheds_typed_and_seeded_backoff_converges() {
    // One-slot queues and a dispatcher that holds each batch long enough
    // for concurrent submitters to pile up: some requests must be shed
    // with a typed Overloaded (not a hang, not a dropped connection), and
    // a client retrying on its seeded backoff schedule must still land
    // every request eventually.
    let (addr, stop, handle) = spawn_server(ServerConfig {
        jobs: 1,
        conn_queue: 1,
        work_queue: 1,
        batch_max: 1,
        readers: 1,
        batch_hold: Duration::from_millis(150),
        ..ServerConfig::default()
    });

    let n_clients = 6;
    std::thread::scope(|scope| {
        let addr = &addr;
        for seed in 0..n_clients {
            scope.spawn(move || {
                let mut c = Client::new(ClientConfig {
                    addrs: vec![addr.to_string()],
                    seed,
                    retries: 40,
                    base_backoff: Duration::from_millis(10),
                    max_backoff: Duration::from_millis(250),
                    ..ClientConfig::default()
                });
                let resp = c
                    .submit(&workload_request("gzip"))
                    .expect("retries must converge");
                assert_eq!(resp.status, Status::Ok);
            });
        }
    });

    stop.store(true, Ordering::SeqCst);
    let stats = handle.join().expect("server thread");
    // Every client got an Ok; the dedupe counter plus ok counter accounts
    // for all successful submissions.
    assert!(stats.served() >= 1);
    assert!(
        stats.shed() > 0,
        "six concurrent clients against one-slot queues must shed at least once; stats: served={} shed={}",
        stats.served(),
        stats.shed()
    );
}

#[test]
fn expired_deadline_is_deadline_exceeded_not_a_stale_report() {
    // The dispatcher holds every batch for 120 ms; a 10 ms deadline is
    // guaranteed to have lapsed by execution time.
    let (addr, stop, handle) = spawn_server(ServerConfig {
        batch_hold: Duration::from_millis(120),
        ..ServerConfig::default()
    });
    let mut c = client(&addr, 5);
    let req = Request {
        deadline_ms: 10,
        ..workload_request("gzip")
    };
    match c.submit(&req).expect_err("deadline must lapse") {
        ClientError::Rejected { status, .. } => assert_eq!(status, Status::DeadlineExceeded),
        other => panic!("expected DeadlineExceeded, got {other}"),
    }
    stop.store(true, Ordering::SeqCst);
    let stats = handle.join().expect("server thread");
    assert_eq!(stats.profile.counter("serve.requests.deadline"), 1);
}

#[test]
fn batching_dedupes_identical_requests_into_one_simulation() {
    // A long linger plus a held dispatcher guarantees the concurrent
    // identical requests land in the same batch, so they must collapse to
    // one simulation answered many times.
    let (addr, stop, handle) = spawn_server(ServerConfig {
        batch_linger: Duration::from_millis(300),
        batch_hold: Duration::from_millis(100),
        work_queue: 32,
        ..ServerConfig::default()
    });

    let n = 4;
    let bodies: Vec<String> = std::thread::scope(|scope| {
        let addr = &addr;
        let handles: Vec<_> = (0..n)
            .map(|seed| {
                scope.spawn(move || {
                    let mut c = client(addr, 100 + seed);
                    body_of(c.submit(&workload_request("vortex")).expect("submit"))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for b in &bodies[1..] {
        assert_eq!(b, &bodies[0], "deduped waiters must all get the same bytes");
    }

    stop.store(true, Ordering::SeqCst);
    let stats = handle.join().expect("server thread");
    assert_eq!(stats.served(), n);
    assert!(
        stats.profile.counter("serve.requests.deduped") > 0,
        "identical concurrent requests in one batch must dedupe; profile:\n{}",
        stats.profile.render_table(false)
    );
}

#[test]
fn shutdown_drains_in_flight_work_before_returning() {
    // Submit while the dispatcher is holding the batch, flip the shutdown
    // flag mid-flight, and require (a) the in-flight request still gets
    // its full Ok response and (b) run() has returned — i.e. drain, not
    // abort and not linger.
    let (addr, stop, handle) = spawn_server(ServerConfig {
        batch_hold: Duration::from_millis(200),
        ..ServerConfig::default()
    });

    let submit = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = client(&addr, 7);
            c.submit(&workload_request("gzip"))
        })
    };
    // Give the request time to be accepted and parsed, then pull the plug
    // while the dispatcher is still holding the batch.
    std::thread::sleep(Duration::from_millis(80));
    stop.store(true, Ordering::SeqCst);

    let resp = submit
        .join()
        .expect("client thread")
        .expect("in-flight request must be answered during drain");
    assert_eq!(resp.status, Status::Ok);
    assert!(!resp.body.is_empty());

    let stats = handle.join().expect("run() must return after the drain");
    assert_eq!(stats.served(), 1);

    // The listener is gone: a fresh connection must not reach a server.
    std::thread::sleep(Duration::from_millis(20));
    let refused = std::net::TcpStream::connect(&addr);
    assert!(refused.is_err(), "listener must be closed after drain");
}
