//! Adversarial client tests for the event-driven serve core: slow-loris
//! peers, one-byte dribblers, connect-and-idle floods, and mid-frame
//! disconnects — none of which may starve a well-behaved request — plus
//! the differential guarantee that both server fronts (event loop and
//! thread-per-connection) serve byte-identical responses.
//!
//! These tests drive shutdown through [`Server::shutdown_flag`], never
//! `signal::trigger()` (whose static flag is process-wide).

use replay_obs::Metric;
use replay_serve::poll;
use replay_serve::proto::{read_frame, write_frame};
use replay_serve::{
    Client, ClientConfig, ClientError, Request, Response, Server, ServerConfig, Source, Status,
};
use replay_sim::report::strip_store_section;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::Duration;

const SCALE: usize = 2_000;

fn spawn_server(
    cfg: ServerConfig,
) -> (
    String,
    std::sync::Arc<std::sync::atomic::AtomicBool>,
    std::thread::JoinHandle<replay_serve::ServeStats>,
) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let stop = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.run());
    (addr, stop, handle)
}

fn client(addr: &str, seed: u64) -> Client {
    Client::new(ClientConfig {
        addrs: vec![addr.to_string()],
        seed,
        retries: 10,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(200),
        ..ClientConfig::default()
    })
}

fn workload_request(name: &str) -> Request {
    Request {
        source: Source::Workload(name.to_string()),
        scale: SCALE as u64,
        timings: false,
        deadline_ms: 0,
        relayed: false,
    }
}

fn body_of(resp: Response) -> String {
    assert_eq!(resp.status, Status::Ok, "{}: {}", resp.status, resp.message);
    strip_store_section(&String::from_utf8(resp.body).expect("report body is UTF-8"))
}

fn local_report(name: &str, jobs: usize) -> String {
    let w = replay_trace::workloads::by_name(name).expect("known workload");
    let trace = replay_sim::TraceStore::global().segment(&w, 0, SCALE);
    let (_, json) = replay_sim::report::run_report(&trace, jobs, false);
    strip_store_section(&json)
}

fn hist_count(stats: &replay_serve::ServeStats, name: &str) -> u64 {
    match stats.profile.get(name) {
        Some(Metric::Hist(h)) => h.count(),
        _ => 0,
    }
}

/// The whole wire frame for a request: `[len u32 LE][payload]`.
fn frame_bytes(req: &Request) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_frame(&mut bytes, &req.encode()).expect("encode frame");
    bytes
}

#[test]
fn one_byte_dribble_is_parsed_incrementally_and_answered_in_full() {
    // Requires the event loop: only these fronts parse partial frames.
    let (addr, stop, handle) = spawn_server(ServerConfig {
        jobs: 1,
        event_loop: true,
        ..ServerConfig::default()
    });

    let frame = frame_bytes(&workload_request("gzip"));
    let mut conn = TcpStream::connect(&addr).expect("connect");
    conn.set_nodelay(true).expect("nodelay");
    for byte in &frame {
        conn.write_all(std::slice::from_ref(byte)).expect("dribble");
        std::thread::sleep(Duration::from_millis(1));
    }
    let payload = read_frame(&mut conn).expect("response frame");
    let resp = Response::decode(&payload).expect("decode response");
    assert_eq!(body_of(resp), local_report("gzip", 1));

    stop.store(true, Ordering::SeqCst);
    let stats = handle.join().expect("server thread");
    assert_eq!(stats.served(), 1);
    assert!(
        hist_count(&stats, "serve.read.partial_bytes") > 1,
        "a dribbled frame must be assembled over multiple partial reads; profile:\n{}",
        stats.profile.render_table(false)
    );
}

#[test]
fn slow_loris_peers_are_timed_out_and_do_not_starve_service() {
    let loris_count = 16;
    let (addr, stop, handle) = spawn_server(ServerConfig {
        jobs: 1,
        event_loop: true,
        io_timeout: Duration::from_millis(150),
        ..ServerConfig::default()
    });

    // Each loris sends two bytes of the length prefix and then stalls
    // forever, holding its socket open.
    let lorises: Vec<TcpStream> = (0..loris_count)
        .map(|_| {
            let mut c = TcpStream::connect(&addr).expect("loris connect");
            c.set_nodelay(true).expect("nodelay");
            c.write_all(&[0x10, 0x00]).expect("loris bytes");
            c
        })
        .collect();

    // A well-behaved request sails past the stalled peers immediately —
    // under the old thread front, 16 lorises against 2 reader threads
    // would hold it hostage for ~8 io_timeout windows.
    let mut c = client(&addr, 11);
    let t = std::time::Instant::now();
    assert_eq!(
        body_of(c.submit(&workload_request("gzip")).expect("submit")),
        local_report("gzip", 1)
    );
    assert!(
        t.elapsed() < Duration::from_secs(5),
        "well-behaved request delayed {:?} by stalled peers",
        t.elapsed()
    );
    // ...and again after every loris has been swept.
    std::thread::sleep(Duration::from_millis(450));
    let _ = body_of(c.submit(&workload_request("gzip")).expect("resubmit"));

    stop.store(true, Ordering::SeqCst);
    let stats = handle.join().expect("server thread");
    drop(lorises);
    assert_eq!(stats.served(), 2);
    assert_eq!(
        stats.profile.counter("serve.conns.timed_out"),
        loris_count,
        "every mid-frame staller must be timed out; profile:\n{}",
        stats.profile.render_table(false)
    );
}

#[test]
fn connect_and_idle_peers_cost_nothing_and_are_never_timed_out() {
    let (addr, stop, handle) = spawn_server(ServerConfig {
        jobs: 1,
        event_loop: true,
        io_timeout: Duration::from_millis(100),
        ..ServerConfig::default()
    });

    // Peers that connect and never send a byte are idle, not stalled:
    // several sweep periods must pass without evicting them.
    let idlers: Vec<TcpStream> = (0..32)
        .map(|_| TcpStream::connect(&addr).expect("idle connect"))
        .collect();
    std::thread::sleep(Duration::from_millis(300));

    let mut c = client(&addr, 12);
    let _ = body_of(c.submit(&workload_request("gzip")).expect("submit"));

    stop.store(true, Ordering::SeqCst);
    let stats = handle.join().expect("server drains despite idle peers");
    drop(idlers);
    assert_eq!(stats.served(), 1);
    assert_eq!(
        stats.profile.counter("serve.conns.timed_out"),
        0,
        "idle (zero-byte) connections must never be swept as stalled"
    );
    assert_eq!(stats.profile.counter("serve.accepted"), 33);
}

#[test]
fn mid_frame_disconnect_is_counted_and_service_continues() {
    let (addr, stop, handle) = spawn_server(ServerConfig {
        jobs: 1,
        event_loop: true,
        ..ServerConfig::default()
    });

    // A length prefix claiming 100 bytes, then 10 bytes, then a hangup.
    {
        let mut c = TcpStream::connect(&addr).expect("connect");
        c.set_nodelay(true).expect("nodelay");
        c.write_all(&100u32.to_le_bytes()).expect("len");
        c.write_all(&[0xab; 10]).expect("partial payload");
    }
    std::thread::sleep(Duration::from_millis(50));

    let mut c = client(&addr, 13);
    let _ = body_of(c.submit(&workload_request("gzip")).expect("submit"));

    stop.store(true, Ordering::SeqCst);
    let stats = handle.join().expect("server thread");
    assert_eq!(stats.served(), 1);
    assert_eq!(
        stats.profile.counter("serve.conns.disconnected"),
        1,
        "a mid-frame hangup must be observed and released; profile:\n{}",
        stats.profile.render_table(false)
    );
}

#[test]
fn event_and_thread_fronts_serve_identical_bytes() {
    let oracle = local_report("twolf", 1);
    let mut bodies = Vec::new();
    for event_loop in [true, false] {
        let (addr, stop, handle) = spawn_server(ServerConfig {
            jobs: 1,
            event_loop,
            ..ServerConfig::default()
        });
        let mut c = client(&addr, 14);
        bodies.push(body_of(
            c.submit(&workload_request("twolf")).expect("submit"),
        ));
        stop.store(true, Ordering::SeqCst);
        let stats = handle.join().expect("server thread");
        assert_eq!(stats.served(), 1, "event_loop={event_loop}");
    }
    assert_eq!(
        bodies[0], bodies[1],
        "the two server fronts must serve byte-identical responses"
    );
    assert_eq!(bodies[0], oracle, "and both must match a local report");
}

#[test]
fn deadline_responses_land_in_the_latency_histogram() {
    // Regression for the unified responder: shed and deadline responses
    // used to bypass latency accounting entirely.
    let (addr, stop, handle) = spawn_server(ServerConfig {
        jobs: 1,
        batch_hold: Duration::from_millis(120),
        ..ServerConfig::default()
    });
    let mut c = client(&addr, 15);
    let req = Request {
        deadline_ms: 10,
        ..workload_request("gzip")
    };
    match c.submit(&req).expect_err("deadline must lapse") {
        ClientError::Rejected { status, .. } => assert_eq!(status, Status::DeadlineExceeded),
        other => panic!("expected DeadlineExceeded, got {other}"),
    }
    stop.store(true, Ordering::SeqCst);
    let stats = handle.join().expect("server thread");
    assert_eq!(stats.profile.counter("serve.requests.deadline"), 1);
    assert!(
        hist_count(&stats, "serve.latency_ms") >= 1,
        "a deadline rejection is still an answered request and must be \
         counted in serve.latency_ms; profile:\n{}",
        stats.profile.render_table(false)
    );
}

#[test]
fn five_thousand_idle_or_slow_connections_do_not_starve_a_real_request() {
    const TOTAL: usize = 5_000;
    const SLOW: usize = 500; // the rest are pure idlers
    if !poll::supported() {
        return; // the thread front cannot (and need not) hold 5k sockets
    }
    // Each held connection is one fd on the client side and one on the
    // server side, both in this process.
    if poll::raise_nofile_limit((4 * TOTAL) as u64).is_err() {
        let (soft, _) = poll::nofile_limits().unwrap_or((0, 0));
        assert!(
            soft >= (2 * TOTAL + 512) as u64,
            "cannot raise RLIMIT_NOFILE and the soft limit ({soft}) is too small"
        );
    }

    let (addr, stop, handle) = spawn_server(ServerConfig {
        jobs: 1,
        event_loop: true,
        // Long enough that the slow dribblers are never swept mid-test.
        io_timeout: Duration::from_secs(60),
        ..ServerConfig::default()
    });

    let mut held: Vec<TcpStream> = Vec::with_capacity(TOTAL);
    for i in 0..TOTAL {
        let mut c = TcpStream::connect(&addr).expect("flood connect");
        if i < SLOW {
            // A slow peer: part of a length prefix, then silence.
            c.set_nodelay(true).expect("nodelay");
            c.write_all(&[0x08]).expect("slow byte");
        }
        held.push(c);
    }

    // With five thousand connections parked, a well-behaved request must
    // still be answered with exactly the local-report bytes (which the
    // differential test above pins to the thread-front baseline).
    let mut c = client(&addr, 16);
    let body = body_of(
        c.submit(&workload_request("gzip"))
            .expect("submit under load"),
    );
    assert_eq!(body, local_report("gzip", 1));

    stop.store(true, Ordering::SeqCst);
    let stats = handle.join().expect("server drains despite the flood");
    drop(held);
    assert_eq!(stats.served(), 1);
    assert_eq!(stats.profile.counter("serve.responses.write_failed"), 0);
    assert!(
        stats.profile.counter("serve.accepted") >= (TOTAL + 1) as u64,
        "all {TOTAL} parked connections plus the real one must be accepted; got {}",
        stats.profile.counter("serve.accepted")
    );
}
