//! Multi-node cluster tests: several real servers on loopback ports,
//! each with its **own** disk store and trace store (sharing the
//! process-global ones would let replication "work" through common
//! memory and prove nothing), a real failover client, and real
//! peer-to-peer artifact traffic.
//!
//! The properties pinned here are the cluster-mode contract:
//!
//! * the response for a key is byte-identical from every node, cold or
//!   warm, redirect-mode or proxy-mode — and identical to a local
//!   `replay report --json`;
//! * after one node synthesizes a trace, other nodes answer the same
//!   key from peer replication (pull-on-miss or gossip push) with zero
//!   re-synthesis;
//! * killing a node mid-load loses no client request: the ring-aware
//!   client rotates to the survivor that the reduced ring would elect.

use replay_serve::proto::{read_frame, write_frame};
use replay_serve::{
    Client, ClientConfig, ClusterConfig, Request, Response, Ring, ServeStats, Server, ServerConfig,
    Source, Status,
};
use replay_sim::report::strip_store_section;
use replay_sim::TraceStore;
use replay_store::Store;
use replay_trace::workloads;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

const SCALE: usize = 2_000;

/// One running cluster node with its private stores.
struct Node {
    addr: String,
    stop: Arc<AtomicBool>,
    handle: JoinHandle<ServeStats>,
    trace_store: Arc<TraceStore>,
}

impl Node {
    fn finish(self) -> ServeStats {
        self.stop.store(true, Ordering::SeqCst);
        self.handle.join().expect("server thread")
    }
}

/// A scratch on-disk artifact store, private to one node of one test.
fn scratch_store(tag: &str) -> &'static Store {
    let dir = std::env::temp_dir().join(format!("replay-cluster-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    Box::leak(Box::new(Store::open(dir).expect("scratch store")))
}

/// Binds `n` servers on ephemeral ports, wires them into one ring, and
/// runs each on a background thread. `tweak` edits each node's cluster
/// config (proxy mode, fanout) before it is applied.
fn spawn_cluster(n: usize, tag: &str, tweak: impl Fn(&mut ClusterConfig)) -> Vec<Node> {
    // Bind everything first: every node needs the full member list, and
    // ephemeral ports are only known after bind.
    let mut pending = Vec::new();
    for i in 0..n {
        let ts = Arc::new(TraceStore::with_disk(scratch_store(&format!("{tag}-{i}"))));
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                jobs: 2,
                ..ServerConfig::default()
            },
        )
        .expect("bind ephemeral port")
        .with_trace_store(Arc::clone(&ts));
        pending.push((server, ts));
    }
    let addrs: Vec<String> = pending
        .iter()
        .map(|(s, _)| s.local_addr().expect("local addr").to_string())
        .collect();
    pending
        .into_iter()
        .zip(&addrs)
        .map(|((mut server, trace_store), addr)| {
            let mut ccfg = ClusterConfig::new(addr.clone(), addrs.clone());
            tweak(&mut ccfg);
            server.configure_cluster(ccfg);
            let stop = server.shutdown_flag();
            let handle = std::thread::spawn(move || server.run());
            Node {
                addr: addr.clone(),
                stop,
                handle,
                trace_store,
            }
        })
        .collect()
}

fn workload_request(name: &str) -> Request {
    Request {
        source: Source::Workload(name.to_string()),
        scale: SCALE as u64,
        timings: false,
        deadline_ms: 0,
        relayed: false,
    }
}

fn cluster_client(addrs: &[String], seed: u64) -> Client {
    Client::new(ClientConfig {
        addrs: addrs.to_vec(),
        seed,
        retries: 10,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(200),
        ..ClientConfig::default()
    })
}

fn body_of(resp: Response) -> String {
    assert_eq!(resp.status, Status::Ok, "{}", resp.message);
    strip_store_section(&String::from_utf8(resp.body).expect("report body is UTF-8"))
}

/// The exact bytes a local `replay report --json` would print, minus
/// the (intentionally non-reproducible) store section.
fn local_report(name: &str) -> String {
    let w = workloads::by_name(name).expect("known workload");
    let trace = TraceStore::global().segment(&w, 0, SCALE);
    let (_, json) = replay_sim::report::run_report(&trace, 2, false);
    strip_store_section(&json)
}

/// One raw wire round trip — lets a test aim a request (relayed or not)
/// at a *specific* node, which the failover client deliberately cannot.
fn raw_submit(addr: &str, req: &Request) -> Response {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    write_frame(&mut conn, &req.encode()).expect("send");
    let frame = read_frame(&mut conn).expect("recv");
    Response::decode(&frame).expect("decode")
}

/// The cluster members in the order the ring (and the client) would try
/// them for `req`: owner first, then failover successors.
fn route_order(addrs: &[String], req: &Request) -> Vec<String> {
    let ring = Ring::new(addrs.to_vec());
    ring.route(req.key())
        .into_iter()
        .map(String::from)
        .collect()
}

#[test]
fn every_node_answers_with_identical_bytes_cold_and_warm() {
    let nodes = spawn_cluster(3, "bytes", |_| {});
    let addrs: Vec<String> = nodes.iter().map(|n| n.addr.clone()).collect();
    let req = workload_request("gzip");
    let expected = local_report("gzip");

    // Aim a relayed request at every node directly: relayed requests are
    // always served locally, so this exercises each node's own pipeline
    // — cold (first pass) and warm (second pass).
    let mut relayed = req.clone();
    relayed.relayed = true;
    for pass in ["cold", "warm"] {
        for node in &nodes {
            let body = body_of(raw_submit(&node.addr, &relayed));
            assert_eq!(
                body, expected,
                "{pass}: node {} drifted from the local report",
                node.addr
            );
        }
    }

    // The failover client gets the same bytes through ring routing.
    let mut c = cluster_client(&addrs, 9);
    assert_eq!(body_of(c.submit(&req).expect("routed submit")), expected);

    let mut write_failed = 0;
    for node in nodes {
        write_failed += node.finish().write_failed();
    }
    assert_eq!(write_failed, 0);
}

#[test]
fn non_owners_redirect_to_the_owner_and_the_client_follows_once() {
    let nodes = spawn_cluster(3, "redirect", |_| {});
    let addrs: Vec<String> = nodes.iter().map(|n| n.addr.clone()).collect();
    let req = workload_request("crafty");
    let route = route_order(&addrs, &req);

    // An un-relayed request at a non-owner is answered NotOwner, naming
    // the owner.
    let resp = raw_submit(&route[1], &req);
    assert_eq!(resp.status, Status::NotOwner);
    assert_eq!(resp.owner_addr(), Some(route[0].as_str()));

    // A client configured with ONLY the wrong node still succeeds: it
    // follows the redirect (marked relayed) in one extra hop.
    let mut wrong = cluster_client(&[route[1].clone()], 3);
    assert_eq!(
        body_of(wrong.submit(&req).expect("redirected submit")),
        local_report("crafty")
    );

    let stats: Vec<ServeStats> = nodes.into_iter().map(Node::finish).collect();
    let redirected: u64 = stats.iter().map(|s| s.redirected()).sum();
    assert!(redirected >= 2, "both probes should have been redirected");
    assert_eq!(stats.iter().map(|s| s.write_failed()).sum::<u64>(), 0);
}

#[test]
fn proxy_mode_serves_from_any_node_without_bouncing_the_client() {
    let nodes = spawn_cluster(3, "proxy", |c| c.proxy = true);
    let req = workload_request("twolf");
    let addrs: Vec<String> = nodes.iter().map(|n| n.addr.clone()).collect();
    let route = route_order(&addrs, &req);
    let expected = local_report("twolf");

    // A non-owner in proxy mode forwards to the owner and relays the
    // owner's bytes — the client never sees NotOwner.
    let resp = raw_submit(&route[2], &req);
    assert_eq!(resp.status, Status::Ok);
    assert_eq!(
        strip_store_section(&String::from_utf8(resp.body).unwrap()),
        expected
    );

    let stats: Vec<ServeStats> = nodes.into_iter().map(Node::finish).collect();
    let proxied: u64 = stats
        .iter()
        .map(|s| s.profile.counter("serve.ring.proxied"))
        .sum();
    assert!(proxied >= 1, "the non-owner should have proxied");
}

#[test]
fn a_cold_node_pulls_the_artifact_from_a_peer_instead_of_resynthesizing() {
    // Fanout 0 disables gossip push, so the ONLY way a second node can
    // avoid synthesis is the pull-on-miss path.
    let nodes = spawn_cluster(3, "pull", |c| c.push_fanout = 0);
    let addrs: Vec<String> = nodes.iter().map(|n| n.addr.clone()).collect();
    let req = workload_request("gzip");
    let route = route_order(&addrs, &req);
    let owner = nodes.iter().position(|n| n.addr == route[0]).unwrap();
    let other = nodes.iter().position(|n| n.addr == route[1]).unwrap();

    // Warm the owner (it synthesizes), then aim a relayed request at a
    // different node: it must serve the same bytes WITHOUT synthesizing,
    // by pulling the owner's artifact over the peer protocol.
    let mut relayed = req.clone();
    relayed.relayed = true;
    let from_owner = body_of(raw_submit(&route[0], &relayed));
    assert_eq!(
        nodes[owner].trace_store.generations(),
        1,
        "owner synthesizes once"
    );

    let from_other = body_of(raw_submit(&route[1], &relayed));
    assert_eq!(
        from_other, from_owner,
        "peer-filled bytes must be identical"
    );
    assert_eq!(
        nodes[other].trace_store.generations(),
        0,
        "the second node must not re-synthesize"
    );
    assert!(
        nodes[other].trace_store.peer_fills() >= 1,
        "fill came from a peer"
    );

    let stats: Vec<ServeStats> = nodes.into_iter().map(Node::finish).collect();
    assert!(
        stats[other].peer_artifact_pulls() >= 1,
        "serve.peer.artifact_pulls must record the pull"
    );
    assert!(
        stats[owner].profile.counter("serve.peer.fetch_served") >= 1,
        "the owner must record serving the fetch"
    );
}

#[test]
fn synthesis_gossips_the_artifact_to_the_next_peer_on_the_route() {
    let nodes = spawn_cluster(3, "gossip", |c| c.push_fanout = 1);
    let addrs: Vec<String> = nodes.iter().map(|n| n.addr.clone()).collect();
    let req = workload_request("crafty");
    let route = route_order(&addrs, &req);
    let successor = nodes.iter().position(|n| n.addr == route[1]).unwrap();

    let mut relayed = req.clone();
    relayed.relayed = true;
    let owner_body = body_of(raw_submit(&route[0], &relayed));

    // Give the synchronous push a moment to land, then serve the same
    // key from the successor: the gossiped artifact means no synthesis
    // AND no pull.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while nodes[successor].trace_store.disk().unwrap().writes() == 0
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(10));
    }
    let successor_body = body_of(raw_submit(&route[1], &relayed));
    assert_eq!(successor_body, owner_body);
    assert_eq!(
        nodes[successor].trace_store.generations(),
        0,
        "no re-synthesis"
    );

    let stats: Vec<ServeStats> = nodes.into_iter().map(Node::finish).collect();
    let pushes: u64 = stats
        .iter()
        .map(|s| s.profile.counter("serve.peer.artifact_pushes"))
        .sum();
    let recv: u64 = stats
        .iter()
        .map(|s| s.profile.counter("serve.peer.push_recv"))
        .sum();
    assert!(pushes >= 1, "the owner must push after synthesis");
    assert!(recv >= 1, "the successor must record the push");
}

#[test]
fn killing_a_node_mid_load_loses_no_client_request() {
    let nodes = spawn_cluster(3, "failover", |_| {});
    let addrs: Vec<String> = nodes.iter().map(|n| n.addr.clone()).collect();
    let names = ["gzip", "crafty", "twolf", "parser", "vortex", "bzip2"];
    let mut c = cluster_client(&addrs, 11);

    // First wave, all nodes up.
    for name in names {
        body_of(
            c.submit(&workload_request(name))
                .expect("submit with full cluster"),
        );
    }

    // Kill one node (drain, then the port refuses), and push the same
    // mix through again: the ring client must rotate every key that
    // node owned onto its route successor. Zero failures allowed.
    let mut nodes = nodes;
    let victim = nodes.remove(1);
    let victim_stats = victim.finish();
    for name in names {
        let resp = c
            .submit(&workload_request(name))
            .unwrap_or_else(|e| panic!("{name} lost after node kill: {e}"));
        assert_eq!(body_of(resp), local_report(name));
    }

    let mut write_failed = victim_stats.write_failed();
    for node in nodes {
        write_failed += node.finish().write_failed();
    }
    assert_eq!(write_failed, 0, "no response may be lost");
}

#[test]
fn a_draining_server_does_not_let_a_lone_client_hot_loop() {
    let nodes = spawn_cluster(1, "drain", |_| {});
    let addr = nodes[0].addr.clone();
    let stats = nodes.into_iter().next().unwrap().finish(); // fully drained: port now refuses
    assert_eq!(stats.write_failed(), 0);

    // A zero-base-backoff client with only this dead address used to
    // spin through its retries in microseconds. The MIN_BACKOFF_MS
    // clamp makes every retry wait at least 1 ms.
    let retries = 20u32;
    let mut c = Client::new(ClientConfig {
        addrs: vec![addr],
        retries,
        base_backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
        seed: 5,
        ..ClientConfig::default()
    });
    let start = std::time::Instant::now();
    let err = c
        .submit(&workload_request("gzip"))
        .expect_err("server is gone");
    let elapsed = start.elapsed();
    assert!(
        matches!(err, replay_serve::ClientError::Exhausted { .. }),
        "{err}"
    );
    assert!(
        elapsed >= Duration::from_millis(u64::from(retries) * replay_serve::MIN_BACKOFF_MS),
        "retries burned in {elapsed:?}: the backoff floor is not being applied"
    );
}
