//! The simulation driver: one trace through one configuration.

use crate::{ConfigKind, Injector, SimConfig, SimResult, TraceEntry, TraceFiller};
use replay_core::{
    exec_frame, optimize, AliasProfile, FrameOutcome, OptFrame, OptStats, OptimizerDatapath,
};
use replay_frame::{CacheEntry, FrameCache, FrameConstructor, RetireEvent};
use replay_timing::{FetchPath, FrameFetch, Pipeline, X86Fetch};
use replay_trace::{Trace, TraceRecord};
use replay_verify::Verifier;
use replay_x86::Inst;
use std::collections::{HashMap, VecDeque};

/// A frame as stored in the frame cache: the (possibly optimized) renamed
/// form, costing its *post-optimization* uop count in cache slots — the
/// capacity benefit of optimization (§6.1).
#[derive(Debug, Clone)]
struct CachedFrame {
    opt: OptFrame,
}

impl CacheEntry for CachedFrame {
    fn entry_addr(&self) -> u32 {
        self.opt.start_addr
    }
    fn slot_cost(&self) -> usize {
        self.opt.uop_count()
    }
}

/// How many recent records feed the alias profiler.
const ALIAS_WINDOW: usize = 512;

struct Runner<'a> {
    cfg: &'a SimConfig,
    records: &'a [TraceRecord],
    pipeline: Pipeline,
    injector: Injector,
    constructor: FrameConstructor,
    frame_cache: FrameCache<CachedFrame>,
    tc_cache: FrameCache<TraceEntry>,
    filler: TraceFiller,
    datapath: OptimizerDatapath<CachedFrame>,
    profile: AliasProfile,
    verifier: Verifier,
    opt_stats: OptStats,
    frames_x86: u64,
    path_mismatch_completions: u64,
    dyn_uops_removed: u64,
    dyn_loads_removed: u64,
    recent_mem: VecDeque<(u32, Vec<u32>)>,
}

impl<'a> Runner<'a> {
    fn new(trace: &'a Trace, cfg: &'a SimConfig) -> Runner<'a> {
        let cache_slots = cfg.timing.frame_cache_uops.max(1);
        let mut injector = Injector::new();
        injector.preseed(trace);
        Runner {
            cfg,
            records: trace.records(),
            pipeline: Pipeline::new(cfg.timing.clone()),
            injector,
            constructor: FrameConstructor::new(cfg.constructor.clone()),
            frame_cache: FrameCache::new(cache_slots),
            tc_cache: FrameCache::new(cache_slots),
            filler: TraceFiller::new(),
            datapath: OptimizerDatapath::new(cfg.datapath),
            profile: AliasProfile::new(),
            verifier: Verifier::new(),
            opt_stats: OptStats::default(),
            frames_x86: 0,
            path_mismatch_completions: 0,
            dyn_uops_removed: 0,
            dyn_loads_removed: 0,
            recent_mem: VecDeque::new(),
        }
    }

    /// Fetches one record through the decoder path.
    fn fetch_via_decoder(&mut self, idx: usize, path: FetchPath) {
        let r = &self.records[idx];
        let flow = self.injector.flow(r);
        let fetch = X86Fetch {
            addr: r.addr,
            uops: &flow,
            taken: r.taken(),
            indirect_target: matches!(r.inst, Inst::Ret | Inst::JmpInd { .. }).then_some(r.next_pc),
            redirects_fetch: r.next_pc != r.fallthrough(),
            load_addr: r.mem_reads.first().map(|t| t.0),
            store_addr: r.mem_writes.first().map(|t| t.0),
            path,
        };
        self.pipeline.fetch_x86(&fetch);
    }

    /// Retires one record architecturally: feeds the frame constructor /
    /// fill unit and advances the golden machine state.
    fn consume(&mut self, idx: usize) {
        let r = &self.records[idx];
        let flow = self.injector.flow(r);

        if self.cfg.kind.uses_frames() {
            let ev = RetireEvent {
                addr: r.addr,
                uops: &flow,
                next_pc: r.next_pc,
                fallthrough: r.fallthrough(),
            };
            if let Some(frame) = self.constructor.retire(&ev) {
                self.handle_new_frame(frame);
            }
        }
        if self.cfg.kind == ConfigKind::TraceCache {
            let ends = matches!(r.inst, Inst::Ret | Inst::JmpInd { .. } | Inst::LongFlow);
            if let Some(t) = self
                .filler
                .retire(r.addr, flow.len(), r.taken().is_some(), ends)
            {
                self.tc_cache.insert(t);
            }
        }

        // Alias-profile window.
        if self.cfg.kind == ConfigKind::ReplayOpt {
            let addrs: Vec<u32> = r
                .mem_reads
                .iter()
                .chain(r.mem_writes.iter())
                .map(|t| t.0)
                .collect();
            self.recent_mem.push_back((r.addr, addrs));
            if self.recent_mem.len() > ALIAS_WINDOW {
                self.recent_mem.pop_front();
            }
        }

        self.injector.apply(r);
    }

    /// Records aliasing events observed within the span of a just-built
    /// frame (§3.4: "we record aliasing events during execution and pass
    /// this information to the optimizer").
    fn profile_span(&mut self, span_records: usize) {
        // All pairs of distinct instructions that touched the same address
        // within the span: the optimizer checks arbitrary (store, load) and
        // (store, store) combinations, so partial pair sets would let it
        // keep re-speculating on already-observed aliases.
        let mut touchers: HashMap<u32, Vec<u32>> = HashMap::new();
        let start = self.recent_mem.len().saturating_sub(span_records);
        for (x86, addrs) in self.recent_mem.iter().skip(start) {
            for &a in addrs {
                let list = touchers.entry(a).or_default();
                if !list.contains(x86) {
                    for &other in list.iter() {
                        self.profile.record(other, *x86);
                    }
                    if list.len() < 16 {
                        list.push(*x86);
                    }
                }
            }
        }
    }

    /// Optimizes (or merely remaps) a newly constructed frame and routes
    /// it toward the frame cache.
    fn handle_new_frame(&mut self, frame: replay_frame::Frame) {
        let now = self.pipeline.cycles();
        match self.cfg.kind {
            ConfigKind::ReplayOpt => {
                self.profile_span(frame.x86_count());
                let (opt, stats) = optimize(&frame, &self.profile, &self.cfg.opt);
                self.opt_stats += stats;
                if self.cfg.verify {
                    let mut raw = OptFrame::from_frame(&frame);
                    raw.compact();
                    self.verifier.check(&raw, &opt, self.injector.golden());
                }
                // Frames become visible only after the optimizer datapath's
                // pipelined latency (10 cycles per uop).
                self.datapath
                    .offer(CachedFrame { opt }, frame.orig_uop_count, now);
            }
            _ => {
                // Basic rePLay: frames go straight into the cache (§6.3).
                let mut opt = OptFrame::from_frame(&frame);
                opt.compact();
                self.opt_stats += OptStats {
                    uops_before: opt.uop_count() as u64,
                    uops_after: opt.uop_count() as u64,
                    loads_before: opt.load_count() as u64,
                    loads_after: opt.load_count() as u64,
                    ..OptStats::default()
                };
                self.frame_cache.insert(CachedFrame { opt });
            }
        }
    }

    /// Fetches one dynamic instance of a cached frame starting at record
    /// `i`. Returns the number of records consumed.
    fn fetch_frame_instance(&mut self, opt: &OptFrame, i: usize) -> usize {
        let n = opt.x86_count();
        let mut snapshot = self.injector.golden().clone();
        let outcome = exec_frame(opt, &mut snapshot);
        let path_ok = (0..n)
            .all(|j| i + j < self.records.len() && self.records[i + j].addr == opt.x86_addrs[j]);

        if path_ok {
            if let FrameOutcome::Completed { transactions } = &outcome {
                let mut mem_addrs = vec![None; opt.len()];
                for t in transactions {
                    mem_addrs[t.uop_index] = Some(t.addr);
                }
                let exit_rec = &self.records[i + n - 1];
                self.pipeline.fetch_frame(&FrameFetch {
                    frame: opt,
                    mem_addrs: &mem_addrs,
                    fails_at: None,
                    exit_taken: exit_rec.taken(),
                    exit_indirect: matches!(exit_rec.inst, Inst::Ret | Inst::JmpInd { .. })
                        .then_some(exit_rec.next_pc),
                });
                self.frames_x86 += n as u64;
                self.dyn_uops_removed +=
                    (opt.orig_uop_count.saturating_sub(opt.uop_count())) as u64;
                self.dyn_loads_removed +=
                    (opt.orig_load_count.saturating_sub(opt.load_count())) as u64;
                for j in 0..n {
                    self.consume(i + j);
                }
                return n;
            }
        }

        // The frame fails for this instance: assertion fire, unsafe-store
        // conflict, fault, or (rarely) a divergence the optimizer proved
        // away. Charge the pessimistic recovery, then refetch the original
        // instructions from the ICache along the *actual* path.
        if std::env::var_os("REPLAY_DEBUG_ABORTS").is_some() {
            if let FrameOutcome::AssertFired { uop_index } = outcome {
                let u = opt.slot(uop_index as replay_core::Slot);
                eprintln!(
                    "abort: {} @x86 {:#x} frame {:#x}",
                    u, u.x86_addr, opt.start_addr
                );
            }
        }
        let fails_at = match outcome {
            FrameOutcome::AssertFired { uop_index } => uop_index,
            FrameOutcome::UnsafeConflict {
                uop_index,
                conflicts_with,
            } => {
                let a = opt.slot(uop_index as replay_core::Slot).x86_addr;
                let b = opt.slot(conflicts_with as replay_core::Slot).x86_addr;
                self.profile.record(a, b);
                uop_index
            }
            FrameOutcome::Faulted { uop_index } => uop_index,
            FrameOutcome::Completed { .. } => {
                self.path_mismatch_completions += 1;
                opt.len().saturating_sub(1)
            }
        };
        let mem_addrs = vec![None; opt.len()];
        self.pipeline.fetch_frame(&FrameFetch {
            frame: opt,
            mem_addrs: &mem_addrs,
            fails_at: Some(fails_at),
            exit_taken: None,
            exit_indirect: None,
        });
        // A frame that just rolled back is stale for the current program
        // behaviour: drop it. The constructor rebuilds a frame for this
        // region if it is still hot (with the offending branch no longer
        // converted, since its bias run was just broken).
        self.frame_cache.invalidate(opt.start_addr);
        let mut j = 0;
        while j < n && i + j < self.records.len() && self.records[i + j].addr == opt.x86_addrs[j] {
            self.fetch_via_decoder(i + j, FetchPath::ICache);
            self.consume(i + j);
            j += 1;
        }
        j.max(1)
    }

    fn run(mut self) -> SimResult {
        let mut i = 0usize;
        while i < self.records.len() {
            if self.cfg.kind == ConfigKind::ReplayOpt {
                let now = self.pipeline.cycles();
                for f in self.datapath.take_completed(now) {
                    self.frame_cache.insert(f);
                }
            }
            let addr = self.records[i].addr;
            match self.cfg.kind {
                ConfigKind::ICache => {
                    self.fetch_via_decoder(i, FetchPath::ICache);
                    self.consume(i);
                    i += 1;
                }
                ConfigKind::TraceCache => {
                    let hit = self.tc_cache.lookup(addr).cloned();
                    match hit {
                        Some(entry) => {
                            let mut j = 0;
                            while j < entry.x86_addrs.len()
                                && i + j < self.records.len()
                                && self.records[i + j].addr == entry.x86_addrs[j]
                            {
                                self.fetch_via_decoder(i + j, FetchPath::Frame);
                                self.consume(i + j);
                                j += 1;
                            }
                            if j == 0 {
                                self.fetch_via_decoder(i, FetchPath::ICache);
                                self.consume(i);
                                j = 1;
                            } else {
                                self.frames_x86 += j as u64;
                            }
                            i += j;
                        }
                        None => {
                            self.fetch_via_decoder(i, FetchPath::ICache);
                            self.consume(i);
                            i += 1;
                        }
                    }
                }
                ConfigKind::Replay | ConfigKind::ReplayOpt => {
                    let hit = self.frame_cache.lookup(addr).map(|c| c.opt.clone());
                    match hit {
                        Some(opt) => {
                            i += self.fetch_frame_instance(&opt, i);
                        }
                        None => {
                            self.fetch_via_decoder(i, FetchPath::ICache);
                            self.consume(i);
                            i += 1;
                        }
                    }
                }
            }
        }
        self.pipeline.finish();

        let pstats = self.pipeline.stats();
        let coverage = if pstats.retired_x86 == 0 {
            0.0
        } else {
            self.frames_x86 as f64 / pstats.retired_x86 as f64
        };
        SimResult {
            workload: String::new(),
            config: self.cfg.kind,
            cycles: self.pipeline.cycles(),
            x86_retired: pstats.retired_x86,
            bins: self.pipeline.bins(),
            pipeline: pstats,
            opt_stats: self.opt_stats,
            dyn_uops_total: self.injector.uops_seen(),
            dyn_uops_removed: self.dyn_uops_removed,
            dyn_loads_total: self.injector.loads_seen(),
            dyn_loads_removed: self.dyn_loads_removed,
            constructor: self.constructor.stats(),
            coverage,
            assert_events: pstats.assert_events,
            path_mismatches: self.path_mismatch_completions,
            verify: self.verifier.stats(),
            uop_ratio: self.injector.uop_ratio(),
        }
    }
}

/// Simulates one trace through one configuration.
///
/// # Example
///
/// ```
/// use replay_sim::{simulate, ConfigKind, SimConfig};
/// use replay_trace::workloads;
///
/// let trace = workloads::by_name("gzip").unwrap().segment_trace(0, 2_000);
/// let r = simulate(&trace, &SimConfig::new(ConfigKind::ICache));
/// assert_eq!(r.x86_retired, 2_000);
/// assert!(r.ipc() > 0.1);
/// ```
pub fn simulate(trace: &Trace, cfg: &SimConfig) -> SimResult {
    let mut result = Runner::new(trace, cfg).run();
    result.workload = trace.name.clone();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use replay_trace::workloads;

    fn short_trace(name: &str, len: usize) -> Trace {
        workloads::by_name(name).unwrap().segment_trace(0, len)
    }

    #[test]
    fn all_configs_retire_every_instruction() {
        let trace = short_trace("crafty", 5_000);
        for kind in ConfigKind::ALL {
            let r = simulate(&trace, &SimConfig::new(kind));
            assert_eq!(r.x86_retired, 5_000, "{kind} retired count");
            assert_eq!(r.cycles, r.bins.total(), "{kind} bins cover cycles");
            assert!(r.ipc() > 0.05, "{kind} ipc {}", r.ipc());
        }
    }

    #[test]
    fn replay_builds_and_uses_frames() {
        let trace = short_trace("bzip2", 8_000);
        let r = simulate(&trace, &SimConfig::new(ConfigKind::Replay));
        assert!(r.constructor.completed > 0, "frames constructed");
        assert!(r.coverage > 0.3, "coverage {}", r.coverage);
        assert!(r.pipeline.frames_fetched > 0);
    }

    #[test]
    fn optimization_removes_uops_and_verifies() {
        let trace = short_trace("bzip2", 8_000);
        let r = simulate(&trace, &SimConfig::new(ConfigKind::ReplayOpt));
        assert!(r.uop_removal() > 0.05, "removal {}", r.uop_removal());
        assert!(r.verify.checked > 0, "verifier ran");
        assert_eq!(r.verify.failed, 0, "all optimizations sound");
    }

    #[test]
    fn rpo_beats_rp_on_redundant_workload() {
        let trace = short_trace("bzip2", 12_000);
        let rp = simulate(&trace, &SimConfig::new(ConfigKind::Replay));
        let rpo = simulate(&trace, &SimConfig::new(ConfigKind::ReplayOpt));
        assert!(
            rpo.ipc() > rp.ipc(),
            "RPO {} should beat RP {}",
            rpo.ipc(),
            rp.ipc()
        );
    }

    #[test]
    fn excel_aborts_some_frames() {
        let trace = short_trace("excel", 12_000);
        let r = simulate(&trace, &SimConfig::new(ConfigKind::ReplayOpt));
        assert!(
            r.assert_events > 0,
            "speculative memory optimization must abort sometimes"
        );
    }

    #[test]
    fn trace_cache_covers_instructions() {
        let trace = short_trace("gzip", 6_000);
        let r = simulate(&trace, &SimConfig::new(ConfigKind::TraceCache));
        assert!(r.coverage > 0.2, "TC coverage {}", r.coverage);
    }
}
