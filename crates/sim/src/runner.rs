//! The simulation driver: one trace through one configuration.
//!
//! [`simulate`] is a pure function of `(trace, config)` — the runner owns
//! every piece of mutable state it touches — so the parallel experiment
//! engine ([`crate::experiment::run_specs`]) can run many instances
//! concurrently with bit-identical results. The per-record and per-fetch
//! hot paths are allocation-free once warm: the alias window recycles its
//! address buffers ([`AliasWindow`]), cached frames are [`Arc`]-shared so
//! a frame-cache hit is a reference-count bump, and frame probes reuse one
//! [`ExecScratch`] instead of cloning the golden machine state.

use crate::framestore::{frame_key, FrameBundle};
use crate::{ConfigKind, Injector, SimConfig, SimResult, TraceEntry, TraceFiller};
use replay_core::{
    observe_opt_result, optimize_observed, probe_frame, AliasProfile, ExecPlan, ExecScratch,
    OptFrame, OptStats, OptimizerDatapath, PassId, PlanScratch, ProbeOutcome,
};
use replay_frame::{CacheEntry, FrameCache, FrameConstructor, RetireEvent};
use replay_obs::Obs;
use replay_timing::{FetchPath, FrameFetch, Pipeline, X86Fetch};
use replay_trace::{Trace, TraceRecord};
use replay_uop::Uop;
use replay_verify::Verifier;
use replay_x86::Inst;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};

/// Runtime specialization state riding along with a cached frame.
///
/// The hit counter and the lazily compiled plan are shared between the
/// cache-resident entry and the clone the run loop holds during a fetch
/// (hence `Arc`), and reset naturally whenever a frame is (re)built — a
/// frame that was invalidated and reconstructed re-earns its plan, which
/// keeps every count a pure function of the trace.
#[derive(Debug, Default)]
struct SpecState {
    /// Dynamic frame-cache hits served for this cached frame.
    hits: AtomicU32,
    /// Compiled once when `hits` crosses the threshold; `Some(None)` means
    /// compilation was attempted and declined (stay interpreted forever).
    plan: OnceLock<Option<ExecPlan>>,
}

/// A frame as stored in the frame cache: the (possibly optimized) renamed
/// form, costing its *post-optimization* uop count in cache slots — the
/// capacity benefit of optimization (§6.1). The frame body is shared, so
/// cloning a cache hit never copies uop vectors.
#[derive(Debug, Clone)]
struct CachedFrame {
    opt: Arc<OptFrame>,
    /// Uops each pass removed from this frame (`PassId::ALL` order), kept
    /// alongside the frame so every dynamic fetch can attribute its saved
    /// uops to the pass that earned them.
    removed_by_pass: [u64; 7],
    /// Hit counting + the compiled execution plan (hot frames only).
    spec: Arc<SpecState>,
}

impl CacheEntry for CachedFrame {
    fn entry_addr(&self) -> u32 {
        self.opt.start_addr
    }
    fn slot_cost(&self) -> usize {
        self.opt.uop_count()
    }
}

/// How many recent records feed the alias profiler.
const ALIAS_WINDOW: usize = 512;

/// Per-address toucher set for [`Runner::profile_span`]: at most 16
/// distinct x86 addresses per data address, stored inline so the reusable
/// map never allocates per entry.
#[derive(Debug, Clone, Copy, Default)]
struct Touchers {
    len: u8,
    x86: [u32; 16],
}

impl Touchers {
    fn as_slice(&self) -> &[u32] {
        &self.x86[..self.len as usize]
    }
    fn push(&mut self, x86: u32) {
        if (self.len as usize) < self.x86.len() {
            self.x86[self.len as usize] = x86;
            self.len += 1;
        }
    }
}

/// A fixed-capacity ring over the most recent records' touched memory
/// addresses.
///
/// This replaces a `VecDeque<(u32, Vec<u32>)>` that allocated a fresh
/// address vector for **every retired record** under RPO. The ring keeps
/// one reusable buffer per slot: once all `cap` slots have been filled,
/// recording a record is a `clear` + `extend` of an existing buffer and
/// the steady-state allocation rate drops to zero.
#[derive(Debug)]
struct AliasWindow {
    cap: usize,
    /// `(x86 address, data addresses touched)`, physically a ring.
    slots: Vec<(u32, Vec<u32>)>,
    /// Physical index of the oldest entry once the ring is full.
    head: usize,
}

impl AliasWindow {
    fn new(cap: usize) -> AliasWindow {
        assert!(cap > 0, "window capacity must be positive");
        AliasWindow {
            cap,
            slots: Vec::new(),
            head: 0,
        }
    }

    /// Records one retired instruction and the data addresses it touched,
    /// evicting the oldest record when full.
    fn push(&mut self, x86: u32, addrs: impl Iterator<Item = u32>) {
        if self.slots.len() < self.cap {
            self.slots.push((x86, addrs.collect()));
        } else {
            let slot = &mut self.slots[self.head];
            slot.0 = x86;
            slot.1.clear();
            slot.1.extend(addrs);
            self.head = (self.head + 1) % self.cap;
        }
    }

    /// The most recent `n` records, oldest first.
    fn last(&self, n: usize) -> impl Iterator<Item = &(u32, Vec<u32>)> {
        let len = self.slots.len();
        let n = n.min(len);
        (len - n..len).map(move |logical| {
            let phys = if len < self.cap {
                logical
            } else {
                (self.head + logical) % self.cap
            };
            &self.slots[phys]
        })
    }
}

/// Chunked decode-flow storage for the streaming hot loop.
///
/// Record-at-a-time iteration resolved every record's flow through the
/// injector's per-address hash map — two to three SipHash lookups per
/// retired instruction, each landing on a separately boxed `Rc<Vec<Uop>>`.
/// The arena instead materializes one chunk of records at a time into a
/// single contiguous uop buffer with `(offset, len)` spans per record:
/// the hot loop's flow lookups become two array indexations into memory
/// that stays cache-resident for the whole chunk, and the buffers recycle
/// their capacity so steady-state refills allocate nothing.
#[derive(Debug, Default)]
struct FlowArena {
    /// All chunk flows, concatenated in record order.
    uops: Vec<Uop>,
    /// Per-record `(offset, len)` into `uops`.
    spans: Vec<(u32, u32)>,
    /// Record index the chunk starts at.
    start: usize,
}

impl FlowArena {
    /// Replaces the chunk with the flows of `records[start..start+chunk]`
    /// (clamped to the trace end), reusing the existing capacity.
    fn refill(
        &mut self,
        injector: &mut Injector,
        records: &[TraceRecord],
        start: usize,
        chunk: usize,
    ) {
        self.uops.clear();
        self.spans.clear();
        self.start = start;
        let end = start.saturating_add(chunk).min(records.len());
        for r in &records[start..end] {
            let flow = injector.flow(r);
            let off = self.uops.len() as u32;
            self.uops.extend_from_slice(&flow);
            self.spans.push((off, flow.len() as u32));
        }
    }

    /// First record index past the chunk.
    fn end(&self) -> usize {
        self.start + self.spans.len()
    }

    /// The decode flow of record `idx`, if the chunk covers it. Frame
    /// instances that run past the chunk boundary miss here and fall back
    /// to the injector's flow cache.
    fn flow_of(&self, idx: usize) -> Option<&[Uop]> {
        let rel = idx.checked_sub(self.start)?;
        let &(off, len) = self.spans.get(rel)?;
        Some(&self.uops[off as usize..(off + len) as usize])
    }
}

struct Runner<'a> {
    cfg: &'a SimConfig,
    records: &'a [TraceRecord],
    pipeline: Pipeline,
    injector: Injector,
    constructor: FrameConstructor,
    frame_cache: FrameCache<CachedFrame>,
    tc_cache: FrameCache<Arc<TraceEntry>>,
    filler: TraceFiller,
    datapath: OptimizerDatapath<CachedFrame>,
    profile: AliasProfile,
    /// Persistent cache of optimized frames for this `(trace, opt config)`
    /// pair; present only under RPO when the artifact store is enabled.
    bundle: Option<FrameBundle>,
    verifier: Verifier,
    opt_stats: OptStats,
    frames_x86: u64,
    path_mismatch_completions: u64,
    dyn_uops_removed: u64,
    dyn_loads_removed: u64,
    /// Dynamic uops saved, attributed to the pass that removed them
    /// (`PassId::ALL` order). Sums exactly to `dyn_uops_removed`.
    dyn_removed_by_pass: [u64; 7],
    obs: Obs,
    recent_mem: AliasWindow,
    /// Reusable buffers for the frame-fetch hot path.
    scratch: ExecScratch,
    mem_addrs: Vec<Option<u32>>,
    touchers: HashMap<u32, Touchers>,
    /// Chunked decode-flow staging for the streaming hot loop.
    arena: FlowArena,
    /// Reusable buffers for specialized (plan) probes.
    plan_scratch: PlanScratch,
    chunks: u64,
    specialized_hits: u64,
    spec_fallbacks: u64,
    plans_compiled: u64,
    /// Dynamic uops saved on *specialized* fetches, per pass — the subset
    /// of `dyn_removed_by_pass` earned while the plan fast path served the
    /// probe.
    dyn_removed_by_pass_spec: [u64; 7],
}

impl<'a> Runner<'a> {
    fn new(trace: &'a Trace, cfg: &'a SimConfig) -> Runner<'a> {
        let cache_slots = cfg.timing.frame_cache_uops.max(1);
        let mut injector = Injector::new();
        injector.preseed(trace);
        Runner {
            cfg,
            records: trace.records(),
            pipeline: Pipeline::new(cfg.timing.clone()),
            injector,
            constructor: FrameConstructor::new(cfg.constructor.clone()),
            frame_cache: FrameCache::new(cache_slots),
            tc_cache: FrameCache::new(cache_slots),
            filler: TraceFiller::new(),
            datapath: OptimizerDatapath::new(cfg.datapath),
            profile: AliasProfile::new(),
            bundle: (cfg.kind == ConfigKind::ReplayOpt)
                .then(|| FrameBundle::open(trace, &cfg.opt))
                .flatten(),
            verifier: Verifier::new(),
            opt_stats: OptStats::default(),
            frames_x86: 0,
            path_mismatch_completions: 0,
            dyn_uops_removed: 0,
            dyn_loads_removed: 0,
            dyn_removed_by_pass: [0; 7],
            obs: Obs::collecting(),
            recent_mem: AliasWindow::new(ALIAS_WINDOW),
            scratch: ExecScratch::new(),
            mem_addrs: Vec::new(),
            touchers: HashMap::new(),
            arena: FlowArena::default(),
            plan_scratch: PlanScratch::new(),
            chunks: 0,
            specialized_hits: 0,
            spec_fallbacks: 0,
            plans_compiled: 0,
            dyn_removed_by_pass_spec: [0; 7],
        }
    }

    /// Stages the next chunk of decode flows starting at record `start`.
    fn refill_arena(&mut self, start: usize) {
        let span = self.obs.start_span();
        self.arena.refill(
            &mut self.injector,
            self.records,
            start,
            self.cfg.hotpath.chunk_records,
        );
        self.obs.end_span("sim.chunk.fill", span);
        self.chunks += 1;
    }

    /// Fetches one record through the decoder path.
    fn fetch_via_decoder(&mut self, idx: usize, path: FetchPath) {
        let r = &self.records[idx];
        let rc;
        let flow: &[Uop] = match self.arena.flow_of(idx) {
            Some(f) => f,
            None => {
                rc = self.injector.flow(r);
                &rc
            }
        };
        let fetch = X86Fetch {
            addr: r.addr,
            uops: flow,
            taken: r.taken(),
            indirect_target: matches!(r.inst, Inst::Ret | Inst::JmpInd { .. }).then_some(r.next_pc),
            redirects_fetch: r.next_pc != r.fallthrough(),
            load_addr: r.mem_reads.first().map(|t| t.0),
            store_addr: r.mem_writes.first().map(|t| t.0),
            path,
        };
        self.pipeline.fetch_x86(&fetch);
    }

    /// Retires one record architecturally: feeds the frame constructor /
    /// fill unit and advances the golden machine state.
    fn consume(&mut self, idx: usize) {
        let r = &self.records[idx];

        if self.cfg.kind.uses_frames() {
            let rc;
            let flow: &[Uop] = match self.arena.flow_of(idx) {
                Some(f) => f,
                None => {
                    rc = self.injector.flow(r);
                    &rc
                }
            };
            let ev = RetireEvent {
                addr: r.addr,
                uops: flow,
                next_pc: r.next_pc,
                fallthrough: r.fallthrough(),
            };
            let built = self.constructor.retire(&ev);
            if let Some(frame) = built {
                self.handle_new_frame(frame);
            }
        }
        if self.cfg.kind == ConfigKind::TraceCache {
            let flow_len = match self.arena.flow_of(idx) {
                Some(f) => f.len(),
                None => self.injector.flow(r).len(),
            };
            let ends = matches!(r.inst, Inst::Ret | Inst::JmpInd { .. } | Inst::LongFlow);
            if let Some(t) = self
                .filler
                .retire(r.addr, flow_len, r.taken().is_some(), ends)
            {
                self.tc_cache.insert(Arc::new(t));
            }
        }

        // Alias-profile window (ring slots recycle their buffers).
        if self.cfg.kind == ConfigKind::ReplayOpt {
            let r = &self.records[idx];
            self.recent_mem.push(
                r.addr,
                r.mem_reads.iter().chain(r.mem_writes.iter()).map(|t| t.0),
            );
        }

        let rc;
        let flow: &[Uop] = match self.arena.flow_of(idx) {
            Some(f) => f,
            None => {
                rc = self.injector.flow(r);
                &rc
            }
        };
        self.injector.apply_with_flow(r, flow);
    }

    /// Records aliasing events observed within the span of a just-built
    /// frame (§3.4: "we record aliasing events during execution and pass
    /// this information to the optimizer").
    fn profile_span(&mut self, span_records: usize) {
        // All pairs of distinct instructions that touched the same address
        // within the span: the optimizer checks arbitrary (store, load) and
        // (store, store) combinations, so partial pair sets would let it
        // keep re-speculating on already-observed aliases.
        self.touchers.clear();
        for (x86, addrs) in self.recent_mem.last(span_records) {
            for &a in addrs {
                let list = self.touchers.entry(a).or_default();
                if !list.as_slice().contains(x86) {
                    for &other in list.as_slice() {
                        self.profile.record(other, *x86);
                    }
                    list.push(*x86);
                }
            }
        }
    }

    /// Optimizes (or merely remaps) a newly constructed frame and routes
    /// it toward the frame cache.
    fn handle_new_frame(&mut self, frame: replay_frame::Frame) {
        let now = self.pipeline.cycles();
        match self.cfg.kind {
            ConfigKind::ReplayOpt => {
                self.profile_span(frame.x86_count());
                // The remapped pre-optimization frame is both the
                // persistent-store key input and the verifier reference;
                // build it only when one of them will use it, keeping the
                // store-less, verify-less path allocation-lean.
                let raw = (self.bundle.is_some() || self.cfg.verify)
                    .then(|| OptFrame::from_frame(&frame));
                let cached = match (&self.bundle, &raw) {
                    (Some(bundle), Some(raw)) => {
                        let key = frame_key(raw, &self.profile);
                        Some((key, bundle.get(key)))
                    }
                    _ => None,
                };
                let (opt, stats) = match cached {
                    Some((_, Some((opt, stats)))) => {
                        // Warm hit: the stored result is bit-identical to
                        // what the passes would produce, so emit exactly
                        // the deterministic counters a fresh optimization
                        // would have (wall-time spans excluded) and skip
                        // the passes entirely.
                        observe_opt_result(&mut self.obs, &self.cfg.opt, &stats);
                        (opt, stats)
                    }
                    Some((key, None)) => {
                        let (opt, stats) =
                            optimize_observed(&frame, &self.profile, &self.cfg.opt, &mut self.obs);
                        let opt = Arc::new(opt);
                        if let Some(bundle) = self.bundle.as_mut() {
                            bundle.insert(key, Arc::clone(&opt), stats);
                        }
                        (opt, stats)
                    }
                    None => {
                        let (opt, stats) =
                            optimize_observed(&frame, &self.profile, &self.cfg.opt, &mut self.obs);
                        (Arc::new(opt), stats)
                    }
                };
                self.opt_stats += stats;
                if self.cfg.verify {
                    let mut raw = raw.expect("reference frame built when verification is on");
                    raw.compact();
                    self.verifier.check(&raw, &opt, self.injector.golden());
                }
                // Frames become visible only after the optimizer datapath's
                // pipelined latency (10 cycles per uop).
                self.datapath.offer(
                    CachedFrame {
                        opt,
                        removed_by_pass: stats.removed_by_pass,
                        spec: Arc::new(SpecState::default()),
                    },
                    frame.orig_uop_count,
                    now,
                );
            }
            _ => {
                // Basic rePLay: frames go straight into the cache (§6.3).
                let mut opt = OptFrame::from_frame(&frame);
                opt.compact();
                self.opt_stats += OptStats {
                    uops_before: opt.uop_count() as u64,
                    uops_after: opt.uop_count() as u64,
                    loads_before: opt.load_count() as u64,
                    loads_after: opt.load_count() as u64,
                    ..OptStats::default()
                };
                self.frame_cache.insert(CachedFrame {
                    opt: Arc::new(opt),
                    removed_by_pass: [0; 7],
                    spec: Arc::new(SpecState::default()),
                });
            }
        }
    }

    /// Fetches one dynamic instance of a cached frame starting at record
    /// `i`. Returns the number of records consumed.
    fn fetch_frame_instance(&mut self, cached: &CachedFrame, i: usize) -> usize {
        let opt: &OptFrame = &cached.opt;
        let n = opt.x86_count();
        // Specialized fast path: once this cached frame has crossed the
        // hit threshold, its compiled plan probes instead of the
        // interpreter. Only a plan probe that *completes* is trusted; any
        // assert fire, unsafe-store conflict, or fault falls back to
        // `probe_frame`, which stays authoritative for failure attribution
        // (so results are bit-identical with specialization on or off).
        let threshold = self.cfg.hotpath.spec_threshold;
        let mut specialized = false;
        let mut plan_outcome = None;
        if threshold > 0 {
            let hits = cached.spec.hits.fetch_add(1, Ordering::Relaxed) + 1;
            if hits >= threshold {
                let plans_compiled = &mut self.plans_compiled;
                let plan = cached.spec.plan.get_or_init(|| {
                    let p = ExecPlan::compile(opt);
                    if p.is_some() {
                        *plans_compiled += 1;
                    }
                    p
                });
                if let Some(plan) = plan.as_ref() {
                    let o = plan.probe(self.injector.golden(), &mut self.plan_scratch);
                    if o == ProbeOutcome::Completed {
                        specialized = true;
                        self.specialized_hits += 1;
                        plan_outcome = Some(o);
                    } else {
                        self.spec_fallbacks += 1;
                    }
                }
            }
        }
        // Probe against the golden state without committing: the runner
        // retires the traced records through `consume` either way, so the
        // old clone-execute-discard of the sparse memory image was pure
        // allocation overhead.
        let outcome = match plan_outcome {
            Some(o) => o,
            None => probe_frame(opt, self.injector.golden(), &mut self.scratch),
        };
        let path_ok = (0..n)
            .all(|j| i + j < self.records.len() && self.records[i + j].addr == opt.x86_addrs[j]);

        if path_ok && outcome == ProbeOutcome::Completed {
            self.mem_addrs.clear();
            self.mem_addrs.resize(opt.len(), None);
            let txns = if specialized {
                self.plan_scratch.transactions()
            } else {
                self.scratch.transactions()
            };
            for t in txns {
                self.mem_addrs[t.uop_index] = Some(t.addr);
            }
            if specialized {
                for (d, r) in self
                    .dyn_removed_by_pass_spec
                    .iter_mut()
                    .zip(cached.removed_by_pass)
                {
                    *d += r;
                }
            }
            let exit_rec = &self.records[i + n - 1];
            self.pipeline.fetch_frame(&FrameFetch {
                frame: opt,
                mem_addrs: &self.mem_addrs,
                fails_at: None,
                exit_taken: exit_rec.taken(),
                exit_indirect: matches!(exit_rec.inst, Inst::Ret | Inst::JmpInd { .. })
                    .then_some(exit_rec.next_pc),
            });
            self.frames_x86 += n as u64;
            self.dyn_uops_removed += (opt.orig_uop_count.saturating_sub(opt.uop_count())) as u64;
            self.dyn_loads_removed += (opt.orig_load_count.saturating_sub(opt.load_count())) as u64;
            for (d, r) in self
                .dyn_removed_by_pass
                .iter_mut()
                .zip(cached.removed_by_pass)
            {
                *d += r;
            }
            for j in 0..n {
                self.consume(i + j);
            }
            return n;
        }

        // The frame fails for this instance: assertion fire, unsafe-store
        // conflict, fault, or (rarely) a divergence the optimizer proved
        // away. Charge the pessimistic recovery, then refetch the original
        // instructions from the ICache along the *actual* path.
        if std::env::var_os("REPLAY_DEBUG_ABORTS").is_some() {
            if let ProbeOutcome::AssertFired { uop_index } = outcome {
                let u = opt.slot(uop_index as replay_core::Slot);
                eprintln!(
                    "abort: {} @x86 {:#x} frame {:#x}",
                    u, u.x86_addr, opt.start_addr
                );
            }
        }
        let fails_at = match outcome {
            ProbeOutcome::AssertFired { uop_index } => uop_index,
            ProbeOutcome::UnsafeConflict {
                uop_index,
                conflicts_with,
            } => {
                let a = opt.slot(uop_index as replay_core::Slot).x86_addr;
                let b = opt.slot(conflicts_with as replay_core::Slot).x86_addr;
                self.profile.record(a, b);
                uop_index
            }
            ProbeOutcome::Faulted { uop_index } => uop_index,
            ProbeOutcome::Completed => {
                self.path_mismatch_completions += 1;
                opt.len().saturating_sub(1)
            }
        };
        self.mem_addrs.clear();
        self.mem_addrs.resize(opt.len(), None);
        self.pipeline.fetch_frame(&FrameFetch {
            frame: opt,
            mem_addrs: &self.mem_addrs,
            fails_at: Some(fails_at),
            exit_taken: None,
            exit_indirect: None,
        });
        // A frame that just rolled back is stale for the current program
        // behaviour: drop it. The constructor rebuilds a frame for this
        // region if it is still hot (with the offending branch no longer
        // converted, since its bias run was just broken).
        self.frame_cache.invalidate(opt.start_addr);
        let mut j = 0;
        while j < n && i + j < self.records.len() && self.records[i + j].addr == opt.x86_addrs[j] {
            self.fetch_via_decoder(i + j, FetchPath::ICache);
            self.consume(i + j);
            j += 1;
        }
        j.max(1)
    }

    fn run(mut self) -> SimResult {
        let chunking = self.cfg.hotpath.chunk_records > 0;
        let mut i = 0usize;
        while i < self.records.len() {
            if chunking && i >= self.arena.end() {
                self.refill_arena(i);
            }
            if self.cfg.kind == ConfigKind::ReplayOpt {
                let now = self.pipeline.cycles();
                for f in self.datapath.take_completed(now) {
                    self.frame_cache.insert(f);
                }
            }
            let addr = self.records[i].addr;
            match self.cfg.kind {
                ConfigKind::ICache => {
                    self.fetch_via_decoder(i, FetchPath::ICache);
                    self.consume(i);
                    i += 1;
                }
                ConfigKind::TraceCache => {
                    let hit = self.tc_cache.lookup(addr).cloned();
                    match hit {
                        Some(entry) => {
                            let mut j = 0;
                            while j < entry.x86_addrs.len()
                                && i + j < self.records.len()
                                && self.records[i + j].addr == entry.x86_addrs[j]
                            {
                                self.fetch_via_decoder(i + j, FetchPath::Frame);
                                self.consume(i + j);
                                j += 1;
                            }
                            if j == 0 {
                                self.fetch_via_decoder(i, FetchPath::ICache);
                                self.consume(i);
                                j = 1;
                            } else {
                                self.frames_x86 += j as u64;
                            }
                            i += j;
                        }
                        None => {
                            self.fetch_via_decoder(i, FetchPath::ICache);
                            self.consume(i);
                            i += 1;
                        }
                    }
                }
                ConfigKind::Replay | ConfigKind::ReplayOpt => {
                    let hit = self.frame_cache.lookup(addr).cloned();
                    match hit {
                        Some(cached) => {
                            i += self.fetch_frame_instance(&cached, i);
                        }
                        None => {
                            self.fetch_via_decoder(i, FetchPath::ICache);
                            self.consume(i);
                            i += 1;
                        }
                    }
                }
            }
        }
        self.pipeline.finish();
        if let Some(bundle) = &self.bundle {
            bundle.persist();
        }

        let pstats = self.pipeline.stats();
        let coverage = if pstats.retired_x86 == 0 {
            0.0
        } else {
            self.frames_x86 as f64 / pstats.retired_x86 as f64
        };

        // Final harvest: everything the run observed, under stable names.
        // The per-pass optimizer metrics (opt.*) accumulated in-line.
        self.frame_cache
            .stats()
            .observe_into("frame_cache", &mut self.obs);
        self.tc_cache
            .stats()
            .observe_into("trace_cache", &mut self.obs);
        self.constructor
            .stats()
            .observe_into("constructor", &mut self.obs);
        pstats.observe_into("pipeline", &mut self.obs);
        self.pipeline.bins().observe_into("cycles", &mut self.obs);
        // Per-port pressure (`timing.port.*`): recorded only by the
        // port-accurate core model, so generic-model profiles are
        // unchanged by the model's existence.
        self.pipeline.observe_ports(&mut self.obs);
        let vstats = self.verifier.stats();
        self.obs.counter("verify.checked", vstats.checked);
        self.obs.counter("verify.passed", vstats.passed);
        self.obs.counter("verify.failed", vstats.failed);
        self.obs.counter("verify.skipped", vstats.skipped);
        self.obs
            .counter("sim.dyn_uops_total", self.injector.uops_seen());
        self.obs
            .counter("sim.dyn_uops_removed", self.dyn_uops_removed);
        self.obs
            .counter("sim.dyn_loads_total", self.injector.loads_seen());
        self.obs
            .counter("sim.dyn_loads_removed", self.dyn_loads_removed);
        self.obs.counter("sim.frames_x86", self.frames_x86);
        self.obs
            .counter("sim.path_mismatches", self.path_mismatch_completions);
        self.obs
            .counter("sim.exec.specialized_hits", self.specialized_hits);
        self.obs.counter("sim.exec.fallbacks", self.spec_fallbacks);
        self.obs
            .counter("sim.exec.plans_compiled", self.plans_compiled);
        self.obs.counter("sim.chunks", self.chunks);
        for (pi, pass) in PassId::ALL.into_iter().enumerate() {
            if self.obs.enabled() {
                self.obs.counter(
                    &format!("sim.pass.{}.dyn_removed_uops", pass.name()),
                    self.dyn_removed_by_pass[pi],
                );
                self.obs.counter(
                    &format!("sim.pass.{}.dyn_removed_uops_specialized", pass.name()),
                    self.dyn_removed_by_pass_spec[pi],
                );
            }
        }

        SimResult {
            workload: String::new(),
            config: self.cfg.kind,
            cycles: self.pipeline.cycles(),
            x86_retired: pstats.retired_x86,
            bins: self.pipeline.bins(),
            pipeline: pstats,
            opt_stats: self.opt_stats,
            dyn_uops_total: self.injector.uops_seen(),
            dyn_uops_removed: self.dyn_uops_removed,
            dyn_loads_total: self.injector.loads_seen(),
            dyn_loads_removed: self.dyn_loads_removed,
            constructor: self.constructor.stats(),
            coverage,
            assert_events: pstats.assert_events,
            path_mismatches: self.path_mismatch_completions,
            verify: self.verifier.stats(),
            uop_ratio: self.injector.uop_ratio(),
            profile: self.obs.into_profile(),
        }
    }
}

/// Simulates one trace through one configuration.
///
/// # Example
///
/// ```
/// use replay_sim::{simulate, ConfigKind, SimConfig};
/// use replay_trace::workloads;
///
/// let trace = workloads::by_name("gzip").unwrap().segment_trace(0, 2_000);
/// let r = simulate(&trace, &SimConfig::new(ConfigKind::ICache));
/// assert_eq!(r.x86_retired, 2_000);
/// assert!(r.ipc() > 0.1);
/// ```
pub fn simulate(trace: &Trace, cfg: &SimConfig) -> SimResult {
    let mut result = Runner::new(trace, cfg).run();
    result.workload = trace.name.clone();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use replay_trace::workloads;

    fn short_trace(name: &str, len: usize) -> Trace {
        workloads::by_name(name).unwrap().segment_trace(0, len)
    }

    #[test]
    fn all_configs_retire_every_instruction() {
        let trace = short_trace("crafty", 5_000);
        for kind in ConfigKind::ALL {
            let r = simulate(&trace, &SimConfig::new(kind));
            assert_eq!(r.x86_retired, 5_000, "{kind} retired count");
            assert_eq!(r.cycles, r.bins.total(), "{kind} bins cover cycles");
            assert!(r.ipc() > 0.05, "{kind} ipc {}", r.ipc());
        }
    }

    #[test]
    fn replay_builds_and_uses_frames() {
        let trace = short_trace("bzip2", 8_000);
        let r = simulate(&trace, &SimConfig::new(ConfigKind::Replay));
        assert!(r.constructor.completed > 0, "frames constructed");
        assert!(r.coverage > 0.3, "coverage {}", r.coverage);
        assert!(r.pipeline.frames_fetched > 0);
    }

    #[test]
    fn optimization_removes_uops_and_verifies() {
        let trace = short_trace("bzip2", 8_000);
        let r = simulate(&trace, &SimConfig::new(ConfigKind::ReplayOpt));
        assert!(r.uop_removal() > 0.05, "removal {}", r.uop_removal());
        assert!(r.verify.checked > 0, "verifier ran");
        assert_eq!(r.verify.failed, 0, "all optimizations sound");
    }

    #[test]
    fn rpo_beats_rp_on_redundant_workload() {
        let trace = short_trace("bzip2", 12_000);
        let rp = simulate(&trace, &SimConfig::new(ConfigKind::Replay));
        let rpo = simulate(&trace, &SimConfig::new(ConfigKind::ReplayOpt));
        assert!(
            rpo.ipc() > rp.ipc(),
            "RPO {} should beat RP {}",
            rpo.ipc(),
            rp.ipc()
        );
    }

    #[test]
    fn excel_aborts_some_frames() {
        let trace = short_trace("excel", 12_000);
        let r = simulate(&trace, &SimConfig::new(ConfigKind::ReplayOpt));
        assert!(
            r.assert_events > 0,
            "speculative memory optimization must abort sometimes"
        );
    }

    #[test]
    fn trace_cache_covers_instructions() {
        let trace = short_trace("gzip", 6_000);
        let r = simulate(&trace, &SimConfig::new(ConfigKind::TraceCache));
        assert!(r.coverage > 0.2, "TC coverage {}", r.coverage);
    }

    #[test]
    fn simulate_is_deterministic() {
        // The parallel engine depends on simulate being a pure function of
        // its inputs: two runs must agree bit for bit.
        let trace = short_trace("vortex", 6_000);
        for kind in ConfigKind::ALL {
            let a = simulate(&trace, &SimConfig::new(kind).without_verify());
            let b = simulate(&trace, &SimConfig::new(kind).without_verify());
            assert_eq!(a.cycles, b.cycles, "{kind}");
            assert_eq!(a.x86_retired, b.x86_retired, "{kind}");
            assert_eq!(a.coverage.to_bits(), b.coverage.to_bits(), "{kind}");
            assert_eq!(a.assert_events, b.assert_events, "{kind}");
        }
    }

    #[test]
    fn specialization_and_chunking_never_change_results() {
        // The hot-path knobs are host-side only: every simulated number
        // must be bit-identical with specialization/chunking on, off, or
        // at pathological settings.
        let trace = short_trace("bzip2", 10_000);
        for kind in [ConfigKind::Replay, ConfigKind::ReplayOpt] {
            let base = simulate(&trace, &SimConfig::new(kind).without_verify());
            let eager = simulate(
                &trace,
                &SimConfig::new(kind).without_verify().with_spec_threshold(1),
            );
            assert!(
                eager.profile.counter("sim.exec.specialized_hits") > 0,
                "{kind}: threshold 1 should specialize every reused frame"
            );
            let variants = [
                SimConfig::new(kind)
                    .without_verify()
                    .without_specialization(),
                SimConfig::new(kind).without_verify().with_spec_threshold(1),
                {
                    let mut c = SimConfig::new(kind).without_verify();
                    c.hotpath.chunk_records = 0;
                    c
                },
                {
                    let mut c = SimConfig::new(kind).without_verify();
                    c.hotpath.chunk_records = 7;
                    c.hotpath.spec_threshold = 2;
                    c
                },
            ];
            for (vi, cfg) in variants.iter().enumerate() {
                let r = simulate(&trace, cfg);
                assert_eq!(base.cycles, r.cycles, "{kind} variant {vi}: cycles");
                assert_eq!(base.x86_retired, r.x86_retired, "{kind} variant {vi}");
                assert_eq!(
                    base.coverage.to_bits(),
                    r.coverage.to_bits(),
                    "{kind} variant {vi}: coverage"
                );
                assert_eq!(
                    base.assert_events, r.assert_events,
                    "{kind} variant {vi}: aborts"
                );
                assert_eq!(
                    base.dyn_uops_removed, r.dyn_uops_removed,
                    "{kind} variant {vi}: removal"
                );
            }
        }
    }

    #[test]
    fn specialized_attribution_is_a_subset_of_total() {
        let trace = short_trace("bzip2", 10_000);
        let r = simulate(&trace, &SimConfig::new(ConfigKind::ReplayOpt));
        let total: u64 = PassId::ALL
            .into_iter()
            .map(|p| {
                r.profile
                    .counter(&format!("sim.pass.{}.dyn_removed_uops", p.name()))
            })
            .sum();
        let spec: u64 = PassId::ALL
            .into_iter()
            .map(|p| {
                r.profile.counter(&format!(
                    "sim.pass.{}.dyn_removed_uops_specialized",
                    p.name()
                ))
            })
            .sum();
        assert!(spec > 0, "hot frames should retire specialized uop savings");
        assert!(spec <= total, "specialized subset exceeds total");
        assert!(
            r.profile.counter("sim.exec.plans_compiled") > 0
                && r.profile.counter("sim.exec.plans_compiled")
                    <= r.profile.counter("sim.exec.specialized_hits"),
            "plans compile once and serve many hits"
        );
    }

    #[test]
    fn alias_window_recycles_and_orders() {
        let mut w = AliasWindow::new(4);
        for i in 0..10u32 {
            w.push(i, [i * 10].into_iter());
        }
        // Window holds 6..=9, oldest first.
        let got: Vec<u32> = w.last(4).map(|(x86, _)| *x86).collect();
        assert_eq!(got, vec![6, 7, 8, 9]);
        let tail: Vec<u32> = w.last(2).map(|(x86, _)| *x86).collect();
        assert_eq!(tail, vec![8, 9]);
        let addrs: Vec<&[u32]> = w.last(4).map(|(_, a)| a.as_slice()).collect();
        assert_eq!(addrs, vec![&[60][..], &[70], &[80], &[90]]);
        // Partially filled windows iterate in insertion order.
        let mut p = AliasWindow::new(8);
        p.push(1, [].into_iter());
        p.push(2, [].into_iter());
        let got: Vec<u32> = p.last(10).map(|(x86, _)| *x86).collect();
        assert_eq!(got, vec![1, 2]);
    }
}
