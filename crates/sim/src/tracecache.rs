//! The Trace-Cache configuration's fill unit and cache entries.

use replay_frame::CacheEntry;

/// A trace-cache line: a dynamic sequence of decoded x86 instructions with
/// up to three conditional branches (the paper's TC configuration, §5.3).
///
/// Unlike a frame, a trace is neither atomic nor single-exit: embedded
/// branches stay branches and are predicted at fetch; execution may leave
/// the trace at any of them (partial-trace fetch).
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// Entry address.
    pub start_addr: u32,
    /// Covered instruction addresses in path order.
    pub x86_addrs: Vec<u32>,
    /// Total uops in the trace (cache slot cost).
    pub uop_count: usize,
}

impl CacheEntry for TraceEntry {
    fn entry_addr(&self) -> u32 {
        self.start_addr
    }
    fn slot_cost(&self) -> usize {
        self.uop_count
    }
}

/// The fill unit: continuously collects retired instructions into traces
/// of at most `max_branches` conditional branches and `max_uops` uops.
#[derive(Debug)]
pub struct TraceFiller {
    max_branches: usize,
    max_uops: usize,
    pending: Option<TraceEntry>,
    branches: usize,
    filled: u64,
}

impl TraceFiller {
    /// Creates a fill unit with the paper's limits: up to three branch
    /// micro-operations per trace; trace length bounded like a wide cache
    /// line.
    pub fn new() -> TraceFiller {
        TraceFiller::with_limits(3, 32)
    }

    /// Creates a fill unit with explicit limits.
    ///
    /// # Panics
    ///
    /// Panics if either limit is zero.
    pub fn with_limits(max_branches: usize, max_uops: usize) -> TraceFiller {
        assert!(max_branches > 0 && max_uops > 0, "limits must be positive");
        TraceFiller {
            max_branches,
            max_uops,
            pending: None,
            branches: 0,
            filled: 0,
        }
    }

    /// Observes one retired instruction. Returns a completed trace when
    /// the limits are reached.
    ///
    /// `ends_trace` marks instructions after which the fill must stop
    /// regardless of limits (indirect jumps, serializing instructions).
    pub fn retire(
        &mut self,
        addr: u32,
        n_uops: usize,
        is_cond_branch: bool,
        ends_trace: bool,
    ) -> Option<TraceEntry> {
        let pending = self.pending.get_or_insert_with(|| TraceEntry {
            start_addr: addr,
            x86_addrs: Vec::new(),
            uop_count: 0,
        });
        pending.x86_addrs.push(addr);
        pending.uop_count += n_uops;
        if is_cond_branch {
            self.branches += 1;
        }
        if self.branches >= self.max_branches || pending.uop_count >= self.max_uops || ends_trace {
            self.branches = 0;
            self.filled += 1;
            return self.pending.take();
        }
        None
    }

    /// Traces completed so far.
    pub fn filled(&self) -> u64 {
        self.filled
    }
}

impl Default for TraceFiller {
    fn default() -> TraceFiller {
        TraceFiller::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_branches_complete_a_trace() {
        let mut f = TraceFiller::new();
        assert!(f.retire(0x10, 1, false, false).is_none());
        assert!(f.retire(0x11, 1, true, false).is_none());
        assert!(f.retire(0x20, 1, true, false).is_none());
        let t = f.retire(0x30, 1, true, false).expect("third branch");
        assert_eq!(t.start_addr, 0x10);
        assert_eq!(t.x86_addrs, vec![0x10, 0x11, 0x20, 0x30]);
        assert_eq!(t.uop_count, 4);
        assert_eq!(f.filled(), 1);
    }

    #[test]
    fn uop_limit_completes_a_trace() {
        let mut f = TraceFiller::with_limits(3, 8);
        assert!(f.retire(0x10, 4, false, false).is_none());
        let t = f.retire(0x11, 4, false, false).expect("uop limit");
        assert_eq!(t.uop_count, 8);
    }

    #[test]
    fn forced_end() {
        let mut f = TraceFiller::new();
        let t = f.retire(0x10, 3, false, true).expect("RET ends the trace");
        assert_eq!(t.x86_addrs, vec![0x10]);
    }

    #[test]
    fn next_trace_starts_fresh() {
        let mut f = TraceFiller::with_limits(1, 32);
        let t1 = f.retire(0x10, 1, true, false).unwrap();
        let t2 = f.retire(0x50, 1, true, false).unwrap();
        assert_eq!(t1.start_addr, 0x10);
        assert_eq!(t2.start_addr, 0x50);
    }

    #[test]
    #[should_panic(expected = "limits must be positive")]
    fn zero_limits_rejected() {
        TraceFiller::with_limits(0, 8);
    }
}
