//! A minimal scoped worker pool for fanning simulation jobs across cores.
//!
//! The experiment drivers produce large batches of *independent* jobs —
//! one `(workload, segment, configuration)` triple each — and every job is
//! a pure function of its inputs ([`crate::simulate`] never mutates shared
//! state). That makes the batch embarrassingly parallel: [`par_map`] runs a
//! job list on `jobs` worker threads and returns the results **in
//! submission order**, so aggregation downstream is bit-identical to a
//! serial run regardless of thread count or scheduling.
//!
//! The pool is built on [`std::thread::scope`] only — no external runtime —
//! because the repository must build without a crates registry. Workers
//! pull job indices from a shared atomic counter (work stealing degenerates
//! to a single fetch-add per job, which is plenty for jobs that each take
//! milliseconds) and write results into dedicated slots.
//!
//! The default worker count comes from [`job_count`]: the `REPLAY_JOBS`
//! environment variable when set, otherwise
//! [`std::thread::available_parallelism`]. A value of `1` bypasses the pool
//! entirely and runs on the calling thread — the legacy serial path.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The number of worker threads the machine supports
/// ([`std::thread::available_parallelism`], falling back to 1).
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// True when the machine cannot actually run `jobs` workers concurrently:
/// fewer available cores than requested jobs means any measured "speedup"
/// is time-slicing overhead, not parallelism. Benchmarks must check this
/// and mark their output degraded instead of publishing the number as a
/// scaling measurement.
pub fn degraded(jobs: usize) -> bool {
    available_jobs() < jobs
}

/// Emits a loud stderr warning when benchmarking `jobs` workers on fewer
/// available cores, returning whether the measurement is degraded. Callers
/// record the returned flag in their JSON output so a starved-runner
/// result can never masquerade as a real scaling curve.
pub fn warn_if_degraded(jobs: usize) -> bool {
    let cores = available_jobs();
    if cores < jobs {
        eprintln!(
            "WARNING: benchmarking {jobs} jobs on {cores} available core(s); \
             parallel timings below measure time-slicing, NOT scaling. \
             The JSON output is marked \"degraded\": true."
        );
        true
    } else {
        false
    }
}

/// The worker count the experiment drivers use by default: the
/// `REPLAY_JOBS` environment variable if it parses to a positive integer,
/// otherwise [`available_jobs`].
pub fn job_count() -> usize {
    match std::env::var("REPLAY_JOBS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => available_jobs(),
    }
}

/// Applies `f` to every item on a scoped pool of `jobs` worker threads and
/// returns the outputs in input order.
///
/// With `jobs <= 1` (or fewer than two items) no threads are spawned and
/// the map runs serially on the calling thread. Results are collected
/// positionally, so the output is independent of scheduling: for a pure
/// `f`, `par_map(n, items, f)` equals `items.iter().map(f).collect()` for
/// every `n`.
///
/// # Panics
///
/// Propagates a panic from `f` after all workers have stopped.
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len());
    if jobs <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("every job ran")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 3, 8, 64] {
            assert_eq!(par_map(jobs, &items, |x| x * x), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        assert_eq!(par_map(8, &[] as &[u32], |x| *x), Vec::<u32>::new());
        assert_eq!(par_map(8, &[7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        assert_eq!(par_map(32, &[1u32, 2, 3], |x| x * 10), vec![10, 20, 30]);
    }

    #[test]
    fn all_jobs_run_exactly_once() {
        let hits = AtomicUsize::new(0);
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(7, &items, |i| {
            hits.fetch_add(1, Ordering::Relaxed);
            *i
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
        assert_eq!(out, items);
    }
}
