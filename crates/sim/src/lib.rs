//! # replay-sim
//!
//! The complete simulation environment of Figure 5 in the paper: the
//! **Micro-Op Injector** (trace reader + x86→uop translator), the
//! **rePLay Engine** (frame constructor → optimization engine → frame
//! cache), the **Timing Model**, and the **State Verifier**, wired together
//! for the four evaluated processor configurations:
//!
//! | Config | Meaning |
//! |--------|---------|
//! | [`ConfigKind::ICache`] | 64 kB instruction cache, conventional fetch (IC) |
//! | [`ConfigKind::TraceCache`] | 16K-uop trace cache + 8 kB ICache, fill unit builds ≤3-branch traces (TC) |
//! | [`ConfigKind::Replay`] | rePLay frames without optimization (RP) |
//! | [`ConfigKind::ReplayOpt`] | rePLay frames with the full optimizer (RPO) |
//!
//! [`simulate`] drives one trace through one configuration;
//! [`experiment`] contains the multi-workload drivers that regenerate
//! every table and figure of the paper's evaluation (see `EXPERIMENTS.md`
//! at the repository root). The drivers fan their independent
//! `(workload, segment, configuration)` jobs across a scoped worker pool
//! ([`parallel`], sized by `REPLAY_JOBS` or the machine's core count) and
//! share synthesized traces through the process-wide [`TraceStore`];
//! because every job is pure and results merge in submission order, the
//! numbers are bit-identical at every worker count.
//!
//! # Example
//!
//! ```
//! use replay_sim::{simulate, ConfigKind, SimConfig};
//! use replay_trace::workloads;
//!
//! let trace = workloads::by_name("crafty").unwrap().segment_trace(0, 4_000);
//! let rp = simulate(&trace, &SimConfig::new(ConfigKind::Replay));
//! let rpo = simulate(&trace, &SimConfig::new(ConfigKind::ReplayOpt));
//! assert!(rpo.opt_stats.removed_uops() > 0, "optimizer removed uops");
//! assert_eq!(rp.x86_retired, rpo.x86_retired, "same work retired");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod experiment;
mod framestore;
mod injector;
pub mod parallel;
pub mod report;
mod result;
mod runner;
mod tracecache;
mod tracestore;

pub use config::{ConfigKind, SimConfig};
pub use injector::Injector;
pub use replay_timing::CoreModel;
pub use result::SimResult;
pub use runner::simulate;
pub use tracecache::{TraceEntry, TraceFiller};
pub use tracestore::{Exchange, TraceStore};
