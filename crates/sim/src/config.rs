//! Simulation configurations.

use replay_core::{DatapathConfig, OptConfig};
use replay_frame::ConstructorConfig;
use replay_timing::{CoreModel, TimingConfig};
use std::fmt;

/// The four processor configurations of the paper's evaluation (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConfigKind {
    /// 64 kB ICache reference (IC).
    ICache,
    /// 16K-uop trace cache + 8 kB ICache (TC).
    TraceCache,
    /// Basic rePLay: frames deposited unoptimized (RP).
    Replay,
    /// rePLay with the optimization engine (RPO).
    ReplayOpt,
}

impl ConfigKind {
    /// All four configurations in the paper's presentation order.
    pub const ALL: [ConfigKind; 4] = [
        ConfigKind::ICache,
        ConfigKind::TraceCache,
        ConfigKind::Replay,
        ConfigKind::ReplayOpt,
    ];

    /// The figure label (IC / TC / RP / RPO).
    pub fn label(self) -> &'static str {
        match self {
            ConfigKind::ICache => "IC",
            ConfigKind::TraceCache => "TC",
            ConfigKind::Replay => "RP",
            ConfigKind::ReplayOpt => "RPO",
        }
    }

    /// True for the two rePLay configurations.
    pub fn uses_frames(self) -> bool {
        matches!(self, ConfigKind::Replay | ConfigKind::ReplayOpt)
    }
}

impl fmt::Display for ConfigKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Host-side hot-path execution knobs.
///
/// These control *how fast the simulator runs*, never *what it computes*:
/// specialization falls back to the interpreter on any divergence-capable
/// event, and chunking only changes record batching, so every simulated
/// number is identical at every setting.
#[derive(Debug, Clone, Copy)]
pub struct HotpathConfig {
    /// Frame-cache hit count after which a cached frame's `OptFrame` is
    /// compiled to a [`replay_core::ExecPlan`]. `0` disables
    /// specialization entirely (pure interpreter).
    pub spec_threshold: u32,
    /// Trace records fetched per streaming chunk (`0` = unchunked,
    /// record-at-a-time legacy iteration).
    pub chunk_records: usize,
}

impl Default for HotpathConfig {
    fn default() -> HotpathConfig {
        HotpathConfig {
            spec_threshold: 8,
            chunk_records: 1024,
        }
    }
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Which processor organization to model.
    pub kind: ConfigKind,
    /// Timing-model parameters (Table 2).
    pub timing: TimingConfig,
    /// Optimizer configuration (used by [`ConfigKind::ReplayOpt`]).
    pub opt: OptConfig,
    /// Frame-constructor parameters.
    pub constructor: ConstructorConfig,
    /// Optimizer-datapath latency model.
    pub datapath: DatapathConfig,
    /// Run the state verifier on every optimized frame (differential
    /// check against the unoptimized form). Slows simulation; on by
    /// default to mirror the paper's methodology.
    pub verify: bool,
    /// Host-side hot-path execution knobs (specialization + chunking).
    pub hotpath: HotpathConfig,
}

impl SimConfig {
    /// The paper's configuration for a given organization: the ICache
    /// reference gets the 64 kB instruction cache, everything else the
    /// 8 kB ICache + 16K-uop frame/trace cache.
    pub fn new(kind: ConfigKind) -> SimConfig {
        let timing = match kind {
            ConfigKind::ICache => TimingConfig::icache_reference(),
            _ => TimingConfig::paper_default(),
        };
        SimConfig {
            kind,
            timing,
            opt: OptConfig::default(),
            constructor: ConstructorConfig::default(),
            datapath: DatapathConfig::default(),
            verify: true,
            hotpath: HotpathConfig::default(),
        }
    }

    /// Replaces the optimizer configuration (builder style).
    pub fn with_opt(mut self, opt: OptConfig) -> SimConfig {
        self.opt = opt;
        self
    }

    /// Selects the execution-core model (builder style): the paper's
    /// generic Table 2 unit pool or the port-accurate model.
    pub fn with_core_model(mut self, model: CoreModel) -> SimConfig {
        self.timing.core_model = model;
        self
    }

    /// Disables in-simulation verification (builder style).
    pub fn without_verify(mut self) -> SimConfig {
        self.verify = false;
        self
    }

    /// Replaces the specialization threshold (builder style); `0`
    /// disables specialized frame execution.
    pub fn with_spec_threshold(mut self, threshold: u32) -> SimConfig {
        self.hotpath.spec_threshold = threshold;
        self
    }

    /// Disables the specialized frame fast path (builder style) — every
    /// frame probe runs through the interpreter.
    pub fn without_specialization(self) -> SimConfig {
        self.with_spec_threshold(0)
    }

    /// Replaces the streaming chunk size in trace records (builder
    /// style); `0` disables chunking and decodes record-at-a-time.
    pub fn with_chunk_records(mut self, records: usize) -> SimConfig {
        self.hotpath.chunk_records = records;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(ConfigKind::ICache.label(), "IC");
        assert_eq!(ConfigKind::ReplayOpt.label(), "RPO");
        assert_eq!(ConfigKind::TraceCache.to_string(), "TC");
    }

    #[test]
    fn icache_config_gets_big_icache() {
        let c = SimConfig::new(ConfigKind::ICache);
        assert_eq!(c.timing.icache.size_bytes, 64 * 1024);
        let c = SimConfig::new(ConfigKind::ReplayOpt);
        assert_eq!(c.timing.icache.size_bytes, 8 * 1024);
        assert_eq!(c.timing.frame_cache_uops, 16 * 1024);
    }

    #[test]
    fn frame_usage() {
        assert!(!ConfigKind::ICache.uses_frames());
        assert!(!ConfigKind::TraceCache.uses_frames());
        assert!(ConfigKind::Replay.uses_frames());
        assert!(ConfigKind::ReplayOpt.uses_frames());
    }

    #[test]
    fn builders() {
        let c = SimConfig::new(ConfigKind::ReplayOpt)
            .with_opt(OptConfig::without("SF"))
            .without_verify();
        assert!(!c.opt.store_fwd);
        assert!(!c.verify);
    }

    #[test]
    fn core_model_builder() {
        let c = SimConfig::new(ConfigKind::ReplayOpt);
        assert_eq!(c.timing.core_model, CoreModel::Generic);
        let c = c.with_core_model(CoreModel::PortAccurate);
        assert_eq!(c.timing.core_model, CoreModel::PortAccurate);
    }

    #[test]
    fn hotpath_builders() {
        let c = SimConfig::new(ConfigKind::ReplayOpt);
        assert_eq!(c.hotpath.spec_threshold, 8);
        assert_eq!(c.hotpath.chunk_records, 1024);
        let c = c.without_specialization();
        assert_eq!(c.hotpath.spec_threshold, 0);
        let c = c.with_spec_threshold(3);
        assert_eq!(c.hotpath.spec_threshold, 3);
        let c = c.with_chunk_records(7);
        assert_eq!(c.hotpath.chunk_records, 7);
    }
}
