//! Simulation configurations.

use replay_core::{DatapathConfig, OptConfig};
use replay_frame::ConstructorConfig;
use replay_timing::TimingConfig;
use std::fmt;

/// The four processor configurations of the paper's evaluation (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConfigKind {
    /// 64 kB ICache reference (IC).
    ICache,
    /// 16K-uop trace cache + 8 kB ICache (TC).
    TraceCache,
    /// Basic rePLay: frames deposited unoptimized (RP).
    Replay,
    /// rePLay with the optimization engine (RPO).
    ReplayOpt,
}

impl ConfigKind {
    /// All four configurations in the paper's presentation order.
    pub const ALL: [ConfigKind; 4] = [
        ConfigKind::ICache,
        ConfigKind::TraceCache,
        ConfigKind::Replay,
        ConfigKind::ReplayOpt,
    ];

    /// The figure label (IC / TC / RP / RPO).
    pub fn label(self) -> &'static str {
        match self {
            ConfigKind::ICache => "IC",
            ConfigKind::TraceCache => "TC",
            ConfigKind::Replay => "RP",
            ConfigKind::ReplayOpt => "RPO",
        }
    }

    /// True for the two rePLay configurations.
    pub fn uses_frames(self) -> bool {
        matches!(self, ConfigKind::Replay | ConfigKind::ReplayOpt)
    }
}

impl fmt::Display for ConfigKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Which processor organization to model.
    pub kind: ConfigKind,
    /// Timing-model parameters (Table 2).
    pub timing: TimingConfig,
    /// Optimizer configuration (used by [`ConfigKind::ReplayOpt`]).
    pub opt: OptConfig,
    /// Frame-constructor parameters.
    pub constructor: ConstructorConfig,
    /// Optimizer-datapath latency model.
    pub datapath: DatapathConfig,
    /// Run the state verifier on every optimized frame (differential
    /// check against the unoptimized form). Slows simulation; on by
    /// default to mirror the paper's methodology.
    pub verify: bool,
}

impl SimConfig {
    /// The paper's configuration for a given organization: the ICache
    /// reference gets the 64 kB instruction cache, everything else the
    /// 8 kB ICache + 16K-uop frame/trace cache.
    pub fn new(kind: ConfigKind) -> SimConfig {
        let timing = match kind {
            ConfigKind::ICache => TimingConfig::icache_reference(),
            _ => TimingConfig::paper_default(),
        };
        SimConfig {
            kind,
            timing,
            opt: OptConfig::default(),
            constructor: ConstructorConfig::default(),
            datapath: DatapathConfig::default(),
            verify: true,
        }
    }

    /// Replaces the optimizer configuration (builder style).
    pub fn with_opt(mut self, opt: OptConfig) -> SimConfig {
        self.opt = opt;
        self
    }

    /// Disables in-simulation verification (builder style).
    pub fn without_verify(mut self) -> SimConfig {
        self.verify = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(ConfigKind::ICache.label(), "IC");
        assert_eq!(ConfigKind::ReplayOpt.label(), "RPO");
        assert_eq!(ConfigKind::TraceCache.to_string(), "TC");
    }

    #[test]
    fn icache_config_gets_big_icache() {
        let c = SimConfig::new(ConfigKind::ICache);
        assert_eq!(c.timing.icache.size_bytes, 64 * 1024);
        let c = SimConfig::new(ConfigKind::ReplayOpt);
        assert_eq!(c.timing.icache.size_bytes, 8 * 1024);
        assert_eq!(c.timing.frame_cache_uops, 16 * 1024);
    }

    #[test]
    fn frame_usage() {
        assert!(!ConfigKind::ICache.uses_frames());
        assert!(!ConfigKind::TraceCache.uses_frames());
        assert!(ConfigKind::Replay.uses_frames());
        assert!(ConfigKind::ReplayOpt.uses_frames());
    }

    #[test]
    fn builders() {
        let c = SimConfig::new(ConfigKind::ReplayOpt)
            .with_opt(OptConfig::without("SF"))
            .without_verify();
        assert!(!c.opt.store_fwd);
        assert!(!c.verify);
    }
}
