//! Process-wide memoization of synthesized workload traces.
//!
//! Synthesizing a trace segment (building the program image and
//! interpreting it for tens of thousands of instructions) costs about as
//! much as simulating it once — and before this module existed, every
//! figure driver regenerated the same traces independently, once per
//! driver per configuration. The [`TraceStore`] keys each generated
//! segment by `(workload, segment, scale)` and hands out [`Arc`]-shared
//! clones, so a trace is synthesized **at most once per process** no
//! matter how many drivers, configurations, or worker threads ask for it.
//!
//! Generation is guarded per key by a [`OnceLock`]: concurrent requests
//! for the *same* segment block until the first one finishes, while
//! requests for *different* segments proceed in parallel (the outer map
//! lock is held only to fetch the cell, never while generating). The
//! [`TraceStore::generations`] counter records how many segments were
//! actually synthesized — the integration tests assert it never exceeds
//! the number of distinct keys requested.

use crate::parallel;
use replay_store::{digest_bytes, Digest64, Store};
use replay_trace::{read_trace, trace_digest, write_trace, Trace, Workload, FORMAT_VERSION};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Artifact class of persisted workload traces.
pub(crate) const TRACE_CLASS: &str = "trace";

/// The persistent-store key of one trace segment: everything that
/// determines the synthesized bytes — the workload specification (which
/// folds in the generator version), the trace file format version, and
/// the `(segment, scale)` coordinates.
fn trace_key(workload: &Workload, segment: usize, scale: usize) -> u64 {
    let mut d = Digest64::new();
    d.write_u64(workload.spec_digest());
    d.write_u32(FORMAT_VERSION);
    d.write_usize(segment);
    d.write_usize(scale);
    d.finish()
}

/// A memoization key: workload specification digest, segment index,
/// per-segment scale. The *digest* — not the name — keys the cache, so
/// two workloads that share a name but differ in generation parameters
/// (exactly what `replay clone` and `replay sweep` produce) never serve
/// each other's traces.
type Key = (u64, usize, usize);

/// Cluster replication hooks a serving layer can install on a disk-backed
/// [`TraceStore`].
///
/// The store stays network-agnostic: it only knows that *somewhere* there
/// may be peers holding the artifact it is about to synthesize. `fetch`
/// runs between the disk miss and synthesis (pull-on-miss) and returns
/// raw RPAS container bytes, which are re-validated by
/// [`replay_store::Store::import`] and the trace round-trip gate before
/// anything trusts them — a hostile or damaged peer degrades to a local
/// synthesis, never to a poisoned cache. `publish` runs after a freshly
/// synthesized artifact is persisted (gossip-on-write).
pub trait Exchange: Send + Sync {
    /// Returns the raw `.rpa` container bytes for `(class, key)` from a
    /// peer, or `None` when no peer holds it.
    fn fetch(&self, class: &str, key: u64) -> Option<Vec<u8>>;
    /// Announces a freshly persisted container to peers (best effort).
    fn publish(&self, class: &str, key: u64, container: &[u8]);
}

/// A process-wide cache of synthesized traces, shared via [`Arc`].
///
/// Most callers want the shared instance from [`TraceStore::global`],
/// which is additionally backed by the persistent artifact store (when
/// one is configured): a segment missing from memory is first sought on
/// disk, and only synthesized — then persisted — if the disk misses too.
/// Tests construct private stores with [`TraceStore::new`] to observe the
/// generation counter in isolation, with no disk behind them.
#[derive(Default)]
pub struct TraceStore {
    segments: Mutex<HashMap<Key, Arc<OnceLock<Arc<Trace>>>>>,
    generations: AtomicU64,
    requests: AtomicU64,
    disk_hits: AtomicU64,
    peer_fills: AtomicU64,
    disk: Option<&'static Store>,
    exchange: OnceLock<Arc<dyn Exchange>>,
}

impl std::fmt::Debug for TraceStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceStore")
            .field("requests", &self.requests())
            .field("generations", &self.generations())
            .field("disk_hits", &self.disk_hits())
            .field("peer_fills", &self.peer_fills())
            .field("disk", &self.disk.map(|s| s.root().to_path_buf()))
            .field("exchange", &self.exchange.get().is_some())
            .finish()
    }
}

impl TraceStore {
    /// Creates an empty store with no persistent backing.
    pub fn new() -> TraceStore {
        TraceStore::default()
    }

    /// Creates an empty store backed by an explicit persistent artifact
    /// store (the global instance wires this up automatically; this
    /// constructor exists for tests that need a private disk directory).
    pub fn with_disk(disk: &'static Store) -> TraceStore {
        TraceStore {
            disk: Some(disk),
            ..TraceStore::default()
        }
    }

    /// The shared per-process store used by the experiment drivers and the
    /// CLI, backed by [`Store::global`] when a cache directory is
    /// configured.
    pub fn global() -> &'static TraceStore {
        static GLOBAL: OnceLock<TraceStore> = OnceLock::new();
        GLOBAL.get_or_init(|| TraceStore {
            disk: Store::global(),
            ..TraceStore::default()
        })
    }

    /// One memoized trace segment of `scale` dynamic x86 instructions.
    ///
    /// The first request for a `(workload, segment, scale)` key generates
    /// the trace; every later (or concurrent) request gets the same
    /// [`Arc`].
    ///
    /// # Panics
    ///
    /// Panics if `segment >= workload.segments` (as
    /// [`Workload::segment_trace`] does).
    pub fn segment(&self, workload: &Workload, segment: usize, scale: usize) -> Arc<Trace> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let cell = {
            let mut map = self.segments.lock().expect("trace store poisoned");
            map.entry((workload.spec_digest(), segment, scale))
                .or_default()
                .clone()
        };
        // Generate outside the map lock so distinct segments synthesize
        // concurrently; the OnceLock serializes same-key racers.
        cell.get_or_init(|| Arc::new(self.load_or_generate(workload, segment, scale)))
            .clone()
    }

    /// The persistent artifact store backing this trace store, if any.
    pub fn disk(&self) -> Option<&'static Store> {
        self.disk
    }

    /// Installs cluster replication hooks. First caller wins (the hooks
    /// are resolved once, like the global store itself); returns `false`
    /// if an exchange was already installed.
    pub fn set_exchange(&self, exchange: Arc<dyn Exchange>) -> bool {
        self.exchange.set(exchange).is_ok()
    }

    /// Loads and fully validates the artifact for `key`: container decode
    /// plus the trace round-trip gate (the decoded trace must serialize
    /// back to the exact payload digest, or the artifact does not mean
    /// what it says). Evicts on any failure.
    fn validated_load(store: &Store, key: u64) -> Option<Trace> {
        let payload = store.load(TRACE_CLASS, key)?;
        match read_trace(&payload[..]) {
            Ok(trace) => {
                if trace_digest(&trace).ok() == Some(digest_bytes(&payload)) {
                    return Some(trace);
                }
                store.evict_corrupt(TRACE_CLASS, key, "re-encode mismatch");
            }
            Err(e) => store.evict_corrupt(TRACE_CLASS, key, &e.to_string()),
        }
        None
    }

    /// Fills one memoization cell: persistent store first (when backed),
    /// then a peer fetch (when an [`Exchange`] is installed), synthesis
    /// as the last resort. Only actual synthesis bumps the generation
    /// counter; disk and peer hits are cached work, not new work.
    fn load_or_generate(&self, workload: &Workload, segment: usize, scale: usize) -> Trace {
        let key = trace_key(workload, segment, scale);
        if let Some(store) = self.disk {
            if let Some(trace) = Self::validated_load(store, key) {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                return trace;
            }
            // Disk missed: ask the peers before paying for synthesis.
            // import() re-validates the container against (class, key)
            // and validated_load() re-runs the round-trip gate, so a
            // hostile peer can cost a fetch, never a wrong trace.
            if let Some(ex) = self.exchange.get() {
                if let Some(container) = ex.fetch(TRACE_CLASS, key) {
                    if store.import(TRACE_CLASS, key, &container) {
                        if let Some(trace) = Self::validated_load(store, key) {
                            self.peer_fills.fetch_add(1, Ordering::Relaxed);
                            return trace;
                        }
                    }
                }
            }
        }
        self.generations.fetch_add(1, Ordering::Relaxed);
        let trace = workload.segment_trace(segment, scale);
        if let Some(store) = self.disk {
            let mut bytes = Vec::new();
            if write_trace(&mut bytes, &trace).is_ok() && store.save(TRACE_CLASS, key, &bytes) {
                // Gossip the freshly persisted artifact so a failover
                // later finds the successor nodes already warm.
                if let Some(ex) = self.exchange.get() {
                    if let Some(container) = store.export(TRACE_CLASS, key) {
                        ex.publish(TRACE_CLASS, key, &container);
                    }
                }
            }
        }
        trace
    }

    /// All of a workload's segments at the given scale, memoized
    /// per segment.
    pub fn traces(&self, workload: &Workload, scale: usize) -> Vec<Arc<Trace>> {
        (0..workload.segments)
            .map(|s| self.segment(workload, s, scale))
            .collect()
    }

    /// Synthesizes every `(workload, segment)` pair across `jobs` worker
    /// threads so a following simulation fan-out starts from a warm store.
    pub fn prefetch(&self, workloads: &[Workload], scale: usize, jobs: usize) {
        let pairs: Vec<(usize, usize)> = workloads
            .iter()
            .enumerate()
            .flat_map(|(wi, w)| (0..w.segments).map(move |s| (wi, s)))
            .collect();
        parallel::par_map(jobs, &pairs, |&(wi, s)| {
            self.segment(&workloads[wi], s, scale);
        });
    }

    /// How many trace segments have actually been synthesized (not served
    /// from cache) over the store's lifetime.
    pub fn generations(&self) -> u64 {
        self.generations.load(Ordering::Relaxed)
    }

    /// How many segment requests the store has served over its lifetime
    /// (memoization hits are `requests() - generations()`).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// How many memoization-cell fills were served by the persistent
    /// artifact store instead of synthesis. Every first request for a key
    /// is either a disk hit or a generation, so
    /// `disk_hits() + generations()` equals the number of distinct keys
    /// ever filled.
    pub fn disk_hits(&self) -> u64 {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// How many memoization-cell fills were served by a peer fetch (the
    /// local disk missed, a cluster peer supplied the artifact, and it
    /// passed every validation gate) instead of synthesis.
    pub fn peer_fills(&self) -> u64 {
        self.peer_fills.load(Ordering::Relaxed)
    }

    /// Records the store's memoization counters into an
    /// [`replay_obs::Obs`] under `tracestore.*`.
    pub fn observe_into(&self, obs: &mut replay_obs::Obs) {
        if !obs.enabled() {
            return;
        }
        let requests = self.requests();
        let generations = self.generations();
        obs.counter("tracestore.requests", requests);
        obs.counter("tracestore.generations", generations);
        obs.counter("tracestore.hits", requests.saturating_sub(generations));
        obs.counter("tracestore.disk_hits", self.disk_hits());
        obs.counter("tracestore.peer_fills", self.peer_fills());
    }

    /// Number of distinct `(workload, segment, scale)` keys requested so
    /// far.
    pub fn cached_segments(&self) -> usize {
        self.segments.lock().expect("trace store poisoned").len()
    }

    /// Drops every cached trace (outstanding [`Arc`]s stay alive). The
    /// generation counter is *not* reset — it counts synthesis work over
    /// the store's whole lifetime.
    pub fn clear(&self) {
        self.segments.lock().expect("trace store poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use replay_trace::workloads;

    #[test]
    fn generates_each_key_once() {
        let store = TraceStore::new();
        let w = workloads::by_name("gzip").unwrap();
        let a = store.segment(&w, 0, 500);
        let b = store.segment(&w, 0, 500);
        assert!(Arc::ptr_eq(&a, &b), "same Arc served from cache");
        assert_eq!(store.generations(), 1);

        // A different scale is a different key.
        let c = store.segment(&w, 0, 600);
        assert_eq!(c.len(), 600);
        assert_eq!(store.generations(), 2);
        assert_eq!(store.cached_segments(), 2);
    }

    #[test]
    fn memoization_hits_are_observable() {
        let store = TraceStore::new();
        let w = workloads::by_name("gzip").unwrap();
        store.segment(&w, 0, 500);
        store.segment(&w, 0, 500);
        store.segment(&w, 0, 500);
        assert_eq!(store.requests(), 3);
        assert_eq!(store.generations(), 1);
        let mut obs = replay_obs::Obs::collecting();
        store.observe_into(&mut obs);
        let p = obs.into_profile();
        assert_eq!(p.counter("tracestore.requests"), 3);
        assert_eq!(p.counter("tracestore.generations"), 1);
        assert_eq!(p.counter("tracestore.hits"), 2);
    }

    #[test]
    fn same_name_different_params_do_not_collide() {
        // Regression: the memoization key once used the workload *name*,
        // so a synthesized clone sharing a suite name would be served the
        // suite workload's trace. The key is now the spec digest.
        let store = TraceStore::new();
        let w = workloads::by_name("gzip").unwrap();
        let mut params = *w.params();
        params.seed ^= 0xdead_beef;
        let twin = Workload::custom(
            w.name.clone(),
            w.suite,
            w.segments,
            w.default_segment_len,
            params,
        );
        let a = store.segment(&w, 0, 500);
        let b = store.segment(&twin, 0, 500);
        assert_eq!(store.generations(), 2, "distinct specs synthesize twice");
        assert_ne!(a.records(), b.records(), "distinct traces served");
    }

    #[test]
    fn traces_match_direct_generation() {
        let store = TraceStore::new();
        let w = workloads::by_name("eon").unwrap();
        let memo = store.traces(&w, 400);
        let direct = w.traces_scaled(400);
        assert_eq!(memo.len(), direct.len());
        for (m, d) in memo.iter().zip(&direct) {
            assert_eq!(m.name, d.name);
            assert_eq!(m.records(), d.records());
        }
        assert_eq!(store.generations(), w.segments as u64);
    }

    #[test]
    fn concurrent_requests_share_one_generation() {
        let store = TraceStore::new();
        let w = workloads::by_name("crafty").unwrap();
        let reqs: Vec<u32> = (0..16).collect();
        let got = parallel::par_map(8, &reqs, |_| store.segment(&w, 0, 800));
        for t in &got {
            assert!(Arc::ptr_eq(t, &got[0]));
        }
        assert_eq!(store.generations(), 1, "racers coalesce onto one build");
    }

    fn scratch_store(tag: &str) -> &'static Store {
        let dir =
            std::env::temp_dir().join(format!("replay-tracestore-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Box::leak(Box::new(Store::open(dir).expect("scratch store")))
    }

    #[test]
    fn disk_backed_store_skips_synthesis_on_warm_fill() {
        let disk = scratch_store("warm");
        let w = workloads::by_name("gzip").unwrap();

        let cold = TraceStore::with_disk(disk);
        let a = cold.segment(&w, 0, 500);
        assert_eq!(cold.generations(), 1, "cold run synthesizes");
        assert_eq!(disk.writes(), 1, "…and persists");

        // A fresh in-memory store over the same disk: no synthesis.
        let warm = TraceStore::with_disk(disk);
        let b = warm.segment(&w, 0, 500);
        assert_eq!(warm.generations(), 0, "warm run loads from disk");
        assert_eq!(warm.disk_hits(), 1, "…the disk hit is counted");
        assert!(disk.hits() >= 1);
        assert_eq!(a.name, b.name);
        assert_eq!(a.records(), b.records(), "bit-identical trace");
    }

    #[test]
    fn corrupt_trace_artifact_is_evicted_and_regenerated() {
        let disk = scratch_store("evict");
        let w = workloads::by_name("gzip").unwrap();
        TraceStore::with_disk(disk).segment(&w, 0, 400);

        // Truncate the one persisted artifact in place.
        let entries: Vec<_> = std::fs::read_dir(disk.root())
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        assert_eq!(entries.len(), 1);
        let bytes = std::fs::read(&entries[0]).unwrap();
        std::fs::write(&entries[0], &bytes[..bytes.len() / 2]).unwrap();

        let recovering = TraceStore::with_disk(disk);
        let t = recovering.segment(&w, 0, 400);
        assert_eq!(t.len(), 400);
        assert_eq!(recovering.generations(), 1, "regenerated after eviction");
        assert_eq!(disk.corrupt_evictions(), 1);
        assert_eq!(disk.writes(), 2, "repaired artifact re-persisted");

        // And the repaired artifact serves the next fill from disk.
        let healed = TraceStore::with_disk(disk);
        healed.segment(&w, 0, 400);
        assert_eq!(healed.generations(), 0);
    }

    /// A test exchange wired directly to another node's disk store, with
    /// published containers collected for inspection.
    struct DiskExchange {
        peer: &'static Store,
        published: Mutex<Vec<(String, u64)>>,
    }

    impl Exchange for DiskExchange {
        fn fetch(&self, class: &str, key: u64) -> Option<Vec<u8>> {
            self.peer.export(class, key)
        }
        fn publish(&self, class: &str, key: u64, _container: &[u8]) {
            self.published
                .lock()
                .unwrap()
                .push((class.to_string(), key));
        }
    }

    #[test]
    fn peer_fetch_fills_a_cold_node_without_synthesis() {
        let disk_a = scratch_store("peer-a");
        let disk_b = scratch_store("peer-b");
        let w = workloads::by_name("gzip").unwrap();

        // Node A synthesizes and persists.
        let a = TraceStore::with_disk(disk_a);
        let warm = a.segment(&w, 0, 500);
        assert_eq!(a.generations(), 1);

        // Node B is cold on disk but wired to pull from A.
        let b = TraceStore::with_disk(disk_b);
        assert!(b.set_exchange(Arc::new(DiskExchange {
            peer: disk_a,
            published: Mutex::new(Vec::new()),
        })));
        let pulled = b.segment(&w, 0, 500);
        assert_eq!(b.generations(), 0, "no re-synthesis on a peer hit");
        assert_eq!(b.peer_fills(), 1);
        assert_eq!(warm.records(), pulled.records(), "bit-identical trace");
        // The pulled artifact landed on B's own disk: a fresh in-memory
        // store over the same disk serves it without the peer.
        let again = TraceStore::with_disk(disk_b);
        again.segment(&w, 0, 500);
        assert_eq!(again.generations(), 0);
        assert_eq!(again.disk_hits(), 1);
    }

    #[test]
    fn synthesis_publishes_and_hostile_peers_cannot_poison() {
        struct HostileExchange {
            calls: AtomicU64,
        }
        impl Exchange for HostileExchange {
            fn fetch(&self, _class: &str, _key: u64) -> Option<Vec<u8>> {
                self.calls.fetch_add(1, Ordering::Relaxed);
                Some(vec![0xBA; 256]) // garbage container
            }
            fn publish(&self, _class: &str, _key: u64, _container: &[u8]) {}
        }

        let disk = scratch_store("peer-hostile");
        let store = TraceStore::with_disk(disk);
        let hostile = Arc::new(HostileExchange {
            calls: AtomicU64::new(0),
        });
        assert!(store.set_exchange(hostile.clone()));
        assert!(!store.set_exchange(hostile.clone()), "first exchange wins");

        let w = workloads::by_name("gzip").unwrap();
        let t = store.segment(&w, 0, 400);
        assert_eq!(t.len(), 400);
        assert_eq!(hostile.calls.load(Ordering::Relaxed), 1, "peer was asked");
        assert_eq!(store.peer_fills(), 0, "garbage never counts as a fill");
        assert_eq!(store.generations(), 1, "fell back to synthesis");
    }

    #[test]
    fn fresh_synthesis_is_published_to_peers() {
        let disk_a = scratch_store("pub-a");
        let disk_b = scratch_store("pub-b");
        let store = TraceStore::with_disk(disk_a);
        let ex = Arc::new(DiskExchange {
            peer: disk_b,
            published: Mutex::new(Vec::new()),
        });
        store.set_exchange(ex.clone());

        let w = workloads::by_name("gzip").unwrap();
        store.segment(&w, 0, 500);
        let published = ex.published.lock().unwrap();
        assert_eq!(published.len(), 1, "one fresh artifact announced");
        assert_eq!(published[0].0, TRACE_CLASS);

        // A disk hit (same key, fresh memo) publishes nothing.
        drop(published);
        let warm = TraceStore::with_disk(disk_a);
        warm.set_exchange(ex.clone());
        warm.segment(&w, 0, 500);
        assert_eq!(ex.published.lock().unwrap().len(), 1, "no re-announce");
    }

    #[test]
    fn prefetch_fills_every_segment() {
        let store = TraceStore::new();
        let ws: Vec<Workload> = workloads::all().into_iter().take(3).collect();
        let total: usize = ws.iter().map(|w| w.segments).sum();
        store.prefetch(&ws, 300, 4);
        assert_eq!(store.generations(), total as u64);
        store.prefetch(&ws, 300, 4);
        assert_eq!(store.generations(), total as u64, "second pass is free");
    }
}
