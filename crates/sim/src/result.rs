//! Simulation results.

use crate::ConfigKind;
use replay_core::OptStats;
use replay_frame::ConstructorStats;
use replay_obs::Profile;
use replay_timing::{CycleBins, PipelineStats};
use replay_verify::VerifyStats;

/// Everything measured by one simulation run (or an aggregation over a
/// workload's trace segments).
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Workload/trace name.
    pub workload: String,
    /// Configuration simulated.
    pub config: ConfigKind,
    /// Total cycles.
    pub cycles: u64,
    /// Retired x86 instructions (the *original* instruction count — the
    /// paper's effective-IPC basis).
    pub x86_retired: u64,
    /// Fetch-cycle breakdown (Figures 7/8 bins).
    pub bins: CycleBins,
    /// Pipeline counters.
    pub pipeline: PipelineStats,
    /// Accumulated optimizer statistics over all *constructed* frames
    /// (per-construction, not dynamically weighted).
    pub opt_stats: OptStats,
    /// Total dynamic uops injected by the trace.
    pub dyn_uops_total: u64,
    /// Dynamic uops saved by fetching optimized frames (each successful
    /// frame fetch saves `original - optimized` uops).
    pub dyn_uops_removed: u64,
    /// Total dynamic load uops injected.
    pub dyn_loads_total: u64,
    /// Dynamic loads saved by fetching optimized frames.
    pub dyn_loads_removed: u64,
    /// Frame-constructor counters.
    pub constructor: ConstructorStats,
    /// Fraction of retired x86 instructions delivered from frames.
    pub coverage: f64,
    /// Frames aborted by assertion fire or unsafe-store conflict.
    pub assert_events: u64,
    /// Frame instances that executed to completion but did not match the
    /// traced path (possible only when an assertion was optimized away by
    /// constant propagation; treated as aborts). Should be ~zero.
    pub path_mismatches: u64,
    /// State-verifier results (RPO with verification enabled).
    pub verify: VerifyStats,
    /// Dynamic uop-per-x86 ratio observed by the injector.
    pub uop_ratio: f64,
    /// The run's structured observability profile (`replay-obs`): per-pass
    /// optimizer attribution, cache/constructor/predictor counters, cycle
    /// bins, and (nondeterministic, hidden by default renderers) span
    /// timings. Merging results merges profiles metric-wise.
    pub profile: Profile,
}

impl SimResult {
    /// Retired x86 instructions per cycle — the paper's y-axis in Figure 6.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.x86_retired as f64 / self.cycles as f64
        }
    }

    /// Fraction of *dynamic* uops removed by the optimizer — the paper's
    /// Table 3, column 1 (instructions outside frames count as retained).
    pub fn uop_removal(&self) -> f64 {
        if self.dyn_uops_total == 0 {
            0.0
        } else {
            self.dyn_uops_removed as f64 / self.dyn_uops_total as f64
        }
    }

    /// Fraction of dynamic loads removed (Table 3 col. 2).
    pub fn load_removal(&self) -> f64 {
        if self.dyn_loads_total == 0 {
            0.0
        } else {
            self.dyn_loads_removed as f64 / self.dyn_loads_total as f64
        }
    }

    /// Merges another segment's result into this one (cycles and counts
    /// add; ratios recompute from the sums).
    pub fn merge(&mut self, other: &SimResult) {
        let total_before = self.x86_retired;
        self.cycles += other.cycles;
        self.x86_retired += other.x86_retired;
        self.bins += other.bins;
        self.opt_stats += other.opt_stats;
        self.dyn_uops_total += other.dyn_uops_total;
        self.dyn_uops_removed += other.dyn_uops_removed;
        self.dyn_loads_total += other.dyn_loads_total;
        self.dyn_loads_removed += other.dyn_loads_removed;
        self.assert_events += other.assert_events;
        self.path_mismatches += other.path_mismatches;
        self.pipeline.retired_x86 += other.pipeline.retired_x86;
        self.pipeline.retired_uops += other.pipeline.retired_uops;
        self.pipeline.mispredicts += other.pipeline.mispredicts;
        self.pipeline.btb_misses += other.pipeline.btb_misses;
        self.pipeline.assert_events += other.pipeline.assert_events;
        self.pipeline.frames_fetched += other.pipeline.frames_fetched;
        self.pipeline.branch_resolution_cycles += other.pipeline.branch_resolution_cycles;
        self.pipeline.branches_resolved += other.pipeline.branches_resolved;
        self.constructor.completed += other.constructor.completed;
        self.constructor.discarded += other.constructor.discarded;
        self.constructor.branches_converted += other.constructor.branches_converted;
        self.constructor.indirects_converted += other.constructor.indirects_converted;
        self.constructor.ended_by_branch += other.constructor.ended_by_branch;
        self.constructor.ended_by_indirect += other.constructor.ended_by_indirect;
        self.constructor.ended_by_size += other.constructor.ended_by_size;
        self.constructor.ended_by_fence += other.constructor.ended_by_fence;
        self.profile.merge(&other.profile);
        self.verify.checked += other.verify.checked;
        self.verify.passed += other.verify.passed;
        self.verify.failed += other.verify.failed;
        self.verify.skipped += other.verify.skipped;
        // Weighted averages by retired instructions.
        let total_after = self.x86_retired.max(1);
        let w_old = total_before as f64 / total_after as f64;
        let w_new = other.x86_retired as f64 / total_after as f64;
        self.coverage = self.coverage * w_old + other.coverage * w_new;
        self.uop_ratio = self.uop_ratio * w_old + other.uop_ratio * w_new;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank(cycles: u64, x86: u64, coverage: f64) -> SimResult {
        SimResult {
            workload: "t".into(),
            config: ConfigKind::Replay,
            cycles,
            x86_retired: x86,
            bins: CycleBins::new(),
            pipeline: PipelineStats::default(),
            opt_stats: OptStats::default(),
            dyn_uops_total: 0,
            dyn_uops_removed: 0,
            dyn_loads_total: 0,
            dyn_loads_removed: 0,
            constructor: ConstructorStats::default(),
            coverage,
            assert_events: 0,
            path_mismatches: 0,
            verify: VerifyStats::default(),
            uop_ratio: 1.4,
            profile: Profile::new(),
        }
    }

    #[test]
    fn ipc_math() {
        let r = blank(100, 250, 0.5);
        assert!((r.ipc() - 2.5).abs() < 1e-12);
        assert_eq!(blank(0, 0, 0.0).ipc(), 0.0);
    }

    #[test]
    fn merge_weights_coverage() {
        let mut a = blank(100, 100, 1.0);
        let b = blank(100, 300, 0.0);
        a.merge(&b);
        assert_eq!(a.cycles, 200);
        assert_eq!(a.x86_retired, 400);
        assert!((a.coverage - 0.25).abs() < 1e-12, "weighted by x86 count");
        assert!((a.ipc() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_recomputes_ipc_from_summed_cycles() {
        // IPC is *not* the average of the segment IPCs: it recomputes from
        // total instructions over total cycles (cycle-weighted).
        let mut a = blank(100, 400, 0.0); // IPC 4.0
        let b = blank(300, 300, 0.0); // IPC 1.0
        a.merge(&b);
        // (400 + 300) / (100 + 300) = 1.75, not (4.0 + 1.0) / 2.
        assert!((a.ipc() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_cycle_bins() {
        use replay_timing::CycleBin;
        let mut a = blank(10, 10, 0.0);
        a.bins.add(CycleBin::Frame, 6);
        a.bins.add(CycleBin::Assert, 4);
        let mut b = blank(20, 20, 0.0);
        b.bins.add(CycleBin::Frame, 5);
        b.bins.add(CycleBin::ICache, 15);
        a.merge(&b);
        assert_eq!(a.bins.get(CycleBin::Frame), 11);
        assert_eq!(a.bins.get(CycleBin::Assert), 4);
        assert_eq!(a.bins.get(CycleBin::ICache), 15);
        assert_eq!(a.bins.total(), 30);
    }

    #[test]
    fn merge_sums_counters_and_ratios_recompute() {
        let mut a = blank(100, 100, 0.0);
        a.dyn_uops_total = 1000;
        a.dyn_uops_removed = 100;
        a.dyn_loads_total = 200;
        a.dyn_loads_removed = 20;
        a.assert_events = 3;
        let mut b = blank(100, 100, 0.0);
        b.dyn_uops_total = 3000;
        b.dyn_uops_removed = 900;
        b.dyn_loads_total = 600;
        b.dyn_loads_removed = 160;
        b.assert_events = 4;
        a.merge(&b);
        assert_eq!(a.dyn_uops_total, 4000);
        assert_eq!(a.dyn_uops_removed, 1000);
        assert_eq!(a.assert_events, 7);
        assert!((a.uop_removal() - 0.25).abs() < 1e-12, "from summed counts");
        assert!((a.load_removal() - 180.0 / 800.0).abs() < 1e-12);
    }

    #[test]
    fn merge_weighted_averages_ignore_empty_segments() {
        // A zero-instruction segment contributes nothing to the weighted
        // coverage / uop-ratio averages.
        let mut a = blank(50, 200, 0.8);
        let b = blank(10, 0, 0.0);
        a.merge(&b);
        assert!((a.coverage - 0.8).abs() < 1e-12);
        assert!((a.uop_ratio - 1.4).abs() < 1e-12);
    }

    #[test]
    fn merge_is_associative_on_counters() {
        // The parallel engine folds segments left-to-right exactly like the
        // serial loop; the counter parts are associative, so a sanity check
        // that two groupings agree guards the fold against drift.
        let segs = [blank(10, 40, 0.1), blank(20, 10, 0.9), blank(5, 50, 0.5)];
        let mut left = segs[0].clone();
        left.merge(&segs[1]);
        left.merge(&segs[2]);
        let mut right_tail = segs[1].clone();
        right_tail.merge(&segs[2]);
        let mut right = segs[0].clone();
        right.merge(&right_tail);
        assert_eq!(left.cycles, right.cycles);
        assert_eq!(left.x86_retired, right.x86_retired);
        assert_eq!(left.ipc().to_bits(), right.ipc().to_bits());
    }
}
