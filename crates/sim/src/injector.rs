//! The Micro-Op Injector: translation and golden-state maintenance.

use replay_trace::{Trace, TraceRecord};
use replay_uop::{ArchReg, Flags, MachineState, Uop};
use replay_x86::translate;
use std::collections::HashMap;
use std::rc::Rc;

/// The injector of Figure 5: translates trace records into uop flows
/// (cached per static instruction) and maintains the *golden* architectural
/// machine state along the trace — the state the verifier and the frame
/// executor consult at every point.
#[derive(Debug, Default)]
pub struct Injector {
    flows: HashMap<u32, Rc<Vec<Uop>>>,
    golden: MachineState,
    x86_seen: u64,
    uops_seen: u64,
    loads_seen: u64,
}

impl Injector {
    /// Creates an injector with a pristine machine state.
    pub fn new() -> Injector {
        Injector::default()
    }

    /// Seeds the golden memory with the *first-touch* value of every
    /// location the trace will access — the paper's initial memory map
    /// (§5.1.3), extended to the whole trace.
    ///
    /// Frames run ahead of retirement: a frame fetched at record *i* may
    /// load a location whose first trace access happens at record *i + k*.
    /// Without pre-seeding, such loads would observe zeros and the frame's
    /// assertions would mis-resolve.
    pub fn preseed(&mut self, trace: &Trace) {
        for r in ArchReg::ALL {
            self.golden.set_reg(r, trace.init_regs[r.index()]);
        }
        self.golden.set_flags(Flags::from_bits(trace.init_flags));
        let mut seen = std::collections::HashSet::new();
        for r in trace.records() {
            for &(addr, value) in r.mem_reads.iter().chain(r.mem_writes.iter()) {
                if seen.insert(addr) {
                    self.golden.store32(addr, value);
                }
            }
        }
    }

    /// The uop decode flow of a record's instruction (cached by address).
    pub fn flow(&mut self, r: &TraceRecord) -> Rc<Vec<Uop>> {
        match self.flows.get(&r.addr) {
            Some(f) => Rc::clone(f),
            None => {
                let f = Rc::new(translate(&r.inst, r.addr, r.fallthrough()));
                self.flows.insert(r.addr, Rc::clone(&f));
                f
            }
        }
    }

    /// The golden machine state as of every record applied so far.
    pub fn golden(&self) -> &MachineState {
        &self.golden
    }

    /// Applies one record's architectural effects to the golden state and
    /// accounts it.
    pub fn apply(&mut self, r: &TraceRecord) {
        self.apply_state(r);
        if let Some(f) = self.flows.get(&r.addr) {
            let uops = f.len() as u64;
            let loads = f.iter().filter(|u| u.is_load()).count() as u64;
            self.uops_seen += uops;
            self.loads_seen += loads;
        }
    }

    /// Applies one record like [`Injector::apply`], but accounts uops from
    /// a flow the caller already holds (the chunk arena's copy), skipping
    /// the per-record flow-map lookup on the streaming hot path. The
    /// counts are identical to [`Injector::apply`] whenever `flow` is the
    /// record's decode flow.
    pub fn apply_with_flow(&mut self, r: &TraceRecord, flow: &[Uop]) {
        self.apply_state(r);
        self.uops_seen += flow.len() as u64;
        self.loads_seen += flow.iter().filter(|u| u.is_load()).count() as u64;
    }

    /// Golden-state update shared by the two `apply` flavors.
    fn apply_state(&mut self, r: &TraceRecord) {
        // Load values reflect what memory held: seeding them keeps the
        // golden memory consistent even for locations initialized outside
        // the trace (the paper's "load data is used by the verifier to
        // perform the load operations").
        for &(addr, value) in &r.mem_reads {
            self.golden.store32(addr, value);
        }
        for &(addr, value) in &r.mem_writes {
            self.golden.store32(addr, value);
        }
        for &(reg, value) in &r.reg_writes {
            if let Some(reg) = ArchReg::from_index(reg as usize) {
                self.golden.set_reg(reg, value);
            }
        }
        self.golden.set_flags(Flags::from_bits(r.flags_after));
        self.x86_seen += 1;
    }

    /// Dynamic x86 instructions applied.
    pub fn x86_seen(&self) -> u64 {
        self.x86_seen
    }

    /// Dynamic uops injected (over applied records with cached flows).
    pub fn uops_seen(&self) -> u64 {
        self.uops_seen
    }

    /// Dynamic load uops injected.
    pub fn loads_seen(&self) -> u64 {
        self.loads_seen
    }

    /// The dynamic uop-per-x86 ratio observed.
    pub fn uop_ratio(&self) -> f64 {
        if self.x86_seen == 0 {
            0.0
        } else {
            self.uops_seen as f64 / self.x86_seen as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use replay_trace::workloads;

    #[test]
    fn flows_are_cached_and_state_tracks() {
        let trace = workloads::by_name("gzip").unwrap().segment_trace(0, 2_000);
        let mut inj = Injector::new();
        for r in trace.records() {
            let f1 = inj.flow(r);
            let f2 = inj.flow(r);
            assert!(Rc::ptr_eq(&f1, &f2), "flow cached");
            inj.apply(r);
        }
        assert_eq!(inj.x86_seen(), trace.len() as u64);
        assert!(inj.uop_ratio() > 1.0 && inj.uop_ratio() < 2.0);
    }

    #[test]
    fn golden_state_matches_interpreter() {
        use replay_x86::Interp;
        let w = workloads::by_name("eon").unwrap();
        let (program, data) = w.segment_program(0);
        let mut interp = Interp::new(program);
        for (addr, bytes) in &data {
            interp.machine.mem.write_bytes(*addr, bytes);
        }
        let steps = interp.run(1_500).unwrap();
        let trace = replay_trace::Trace::new(
            "t",
            steps
                .iter()
                .map(replay_trace::TraceRecord::from_step)
                .collect(),
        );
        let mut inj = Injector::new();
        for r in trace.records() {
            inj.flow(r);
            inj.apply(r);
        }
        // The golden registers equal the interpreter's final registers.
        for r in ArchReg::GPRS {
            assert_eq!(inj.golden().reg(r), interp.machine.reg(r), "{r} diverged");
        }
        assert_eq!(inj.golden().flags(), interp.machine.flags());
    }
}
