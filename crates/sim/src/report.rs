//! The `replay-report/v3` artifact: one JSON document holding the four
//! per-configuration observability profiles, their deterministic merge,
//! and (last) the non-reproducible cache-effectiveness section.
//!
//! This module is the *single* renderer of that artifact. `replay report
//! --json` and the `replay-serve` TCP service both call [`run_report`],
//! which is what makes a served response byte-identical to a local run:
//! there is no second copy of the layout to drift. The only intentionally
//! non-reproducible part is the trailing `"store"` section (cache hit
//! counters differ between cold and warm processes by design); consumers
//! comparing two reports strip it first with [`strip_store_section`].
//!
//! **v1 → v2 compatibility**: v2 is a strict superset of v1. Every v1 key
//! keeps its meaning and its value; v2 adds the hot-path execution
//! counters to each profile — `sim.exec.specialized_hits`,
//! `sim.exec.fallbacks`, `sim.exec.plans_compiled`, `sim.chunks`, and the
//! per-pass `sim.pass.<pass>.dyn_removed_uops_specialized` split, which
//! attributes optimization profit separately for fetches served by the
//! specialized frame fast path.
//!
//! **v2 → v3 compatibility**: v3 is again a strict superset. It adds a
//! top-level `"core_model"` key naming the execution-core model the run
//! was simulated under (`generic` or `port`; see `replay-timing`'s
//! `ports` module) and, when the port-accurate model is selected,
//! per-port pressure counters `timing.port.<p>.issued` /
//! `timing.port.<p>.contention_cycles` in each configuration's profile.
//! Generic-model reports carry no `timing.port.*` keys. All new values
//! are deterministic functions of `(trace, config)`, so v3 retains the
//! byte-identity across `--jobs` and cache temperature. Consumers that
//! matched the literal schema string must accept `replay-report/v3`.

use crate::experiment::{run_specs, SimSpec};
use crate::{ConfigKind, SimConfig, SimResult, TraceStore};
use replay_timing::CoreModel;
use replay_trace::Trace;
use std::sync::Arc;

/// The four-configuration spec batch for one trace, in
/// [`ConfigKind::ALL`] order — the rows of every report — under the
/// generic core model.
pub fn specs_for_trace(trace: &Arc<Trace>) -> Vec<SimSpec> {
    specs_for_trace_model(trace, CoreModel::Generic)
}

/// [`specs_for_trace`] under an explicit execution-core model.
pub fn specs_for_trace_model(trace: &Arc<Trace>, model: CoreModel) -> Vec<SimSpec> {
    ConfigKind::ALL
        .into_iter()
        .map(|kind| SimSpec {
            name: trace.name.clone(),
            traces: vec![Arc::clone(trace)],
            cfg: SimConfig::new(kind).without_verify().with_core_model(model),
        })
        .collect()
}

/// Builds the merged cross-configuration profile for a report run: the
/// per-spec profiles are submitted to a [`replay_obs::Registry`] in
/// submission (spec) order and merged deterministically. Cache-layer
/// counters live in the separate `store` section ([`store_profile`]) —
/// they describe *this process's* cache luck, not the simulated machines,
/// and folding them in here would break the cold-vs-warm byte identity of
/// `combined`.
pub fn combined_profile(results: &[SimResult]) -> replay_obs::Profile {
    let registry = replay_obs::Registry::new();
    for (i, r) in results.iter().enumerate() {
        registry.submit(i, r.profile.clone());
    }
    registry.finish()
}

/// The cache-effectiveness profile of this process: in-memory trace
/// memoization (`tracestore.*`) and, when the persistent store is
/// enabled, on-disk artifact traffic (`store.*`). Deliberately segregated
/// from the simulation profiles — these counters differ between cold and
/// warm runs by design.
pub fn store_profile() -> replay_obs::Profile {
    let mut obs = replay_obs::Obs::collecting();
    TraceStore::global().observe_into(&mut obs);
    if let Some(store) = replay_store::Store::global() {
        store.observe_into(&mut obs);
    }
    obs.into_profile()
}

/// Renders the `replay-report/v3` JSON document from the four
/// per-configuration results of [`specs_for_trace_model`].
///
/// Stable machine-readable schema: per-configuration profiles plus the
/// deterministic cross-configuration merge. Worker count and wall time
/// are intentionally absent (unless `timings`) so the artifact is
/// byte-identical run to run at any `--jobs` — except for the final
/// `store` section, which reports this process's cache effectiveness and
/// is stripped by comparers ([`strip_store_section`]).
pub fn render_report(
    workload: &str,
    scale: usize,
    model: CoreModel,
    results: &[SimResult],
    timings: bool,
) -> String {
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"replay-report/v3\",\n");
    json.push_str(&format!("  \"workload\": \"{workload}\",\n"));
    json.push_str(&format!("  \"scale\": {scale},\n"));
    json.push_str(&format!("  \"core_model\": \"{}\",\n", model.label()));
    json.push_str("  \"configs\": {\n");
    for (i, (kind, r)) in ConfigKind::ALL.into_iter().zip(results).enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        json.push_str(&format!(
            "    \"{}\": {}",
            kind.label(),
            r.profile.to_json(timings)
        ));
    }
    json.push_str("\n  },\n");
    json.push_str(&format!(
        "  \"combined\": {},\n",
        combined_profile(results).to_json(timings)
    ));
    // The one intentionally non-reproducible section: cache effectiveness
    // for this process (zero hits on a cold run, nonzero on a warm one).
    // Consumers comparing reports should strip it first.
    json.push_str(&format!(
        "  \"store\": {}\n}}\n",
        store_profile().to_json(timings)
    ));
    json
}

/// Runs all four configurations of `trace` on `jobs` workers under the
/// generic core model and renders the report. Returns the
/// per-configuration results (for human-facing summaries) alongside the
/// JSON bytes.
pub fn run_report(trace: &Arc<Trace>, jobs: usize, timings: bool) -> (Vec<SimResult>, String) {
    run_report_model(trace, jobs, timings, CoreModel::Generic)
}

/// [`run_report`] under an explicit execution-core model.
pub fn run_report_model(
    trace: &Arc<Trace>,
    jobs: usize,
    timings: bool,
    model: CoreModel,
) -> (Vec<SimResult>, String) {
    let specs = specs_for_trace_model(trace, model);
    let results = run_specs(&specs, jobs);
    let json = render_report(&trace.name, trace.len(), model, &results, timings);
    (results, json)
}

/// Removes the trailing non-reproducible `"store"` section from a
/// `replay-report/v3` document, restoring the closing brace. Two reports
/// of the same workload at the same scale compare byte-identical after
/// this, regardless of worker count or cache temperature. Documents
/// without a `store` section pass through unchanged.
pub fn strip_store_section(json: &str) -> String {
    match json.find(",\n  \"store\": ") {
        Some(i) => format!("{}\n}}\n", &json[..i]),
        None => json.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use replay_trace::workloads;

    #[test]
    fn report_is_byte_identical_at_any_job_count() {
        let trace = Arc::new(workloads::by_name("gzip").unwrap().segment_trace(0, 2_000));
        let (_, serial) = run_report(&trace, 1, false);
        let (_, par) = run_report(&trace, 4, false);
        assert_eq!(
            strip_store_section(&serial),
            strip_store_section(&par),
            "store-stripped reports must not depend on --jobs"
        );
    }

    #[test]
    fn strip_removes_only_the_store_section() {
        let trace = Arc::new(workloads::by_name("eon").unwrap().segment_trace(0, 1_000));
        let (_, json) = run_report(&trace, 1, false);
        let stripped = strip_store_section(&json);
        assert!(json.contains("\"store\""));
        assert!(!stripped.contains("\"store\""));
        assert!(stripped.contains("\"combined\""));
        assert!(stripped.ends_with("\n}\n"), "closing brace restored");
        // Idempotent on already-stripped documents.
        assert_eq!(strip_store_section(&stripped), stripped);
    }

    #[test]
    fn port_model_report_carries_port_counters_and_generic_does_not() {
        let trace = Arc::new(workloads::by_name("gzip").unwrap().segment_trace(0, 1_000));
        let (_, generic) = run_report_model(&trace, 1, false, CoreModel::Generic);
        let (_, port) = run_report_model(&trace, 1, false, CoreModel::PortAccurate);
        assert!(generic.contains("\"core_model\": \"generic\""));
        assert!(port.contains("\"core_model\": \"port\""));
        assert!(!generic.contains("timing.port."));
        assert!(port.contains("timing.port.p0.issued"));
        assert!(port.contains("timing.port.p23.issued"));
        assert_ne!(
            strip_store_section(&generic),
            strip_store_section(&port),
            "the two core models time the machine differently"
        );
    }
}
