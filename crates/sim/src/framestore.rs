//! Persistent caching of *optimized frames* — the disk layer beneath the
//! frame-cache fill path.
//!
//! Optimizing a frame is a pure function of three inputs: the remapped
//! frame itself, the [`OptConfig`], and the alias-profile facts the
//! memory pass can query (the `aliased()` relation restricted to the
//! frame's memory uops — the optimizer's single profile query site). A
//! [`FrameBundle`] keys each optimized frame by a digest of exactly those
//! inputs, so a warm run that reconstructs the same frame under the same
//! profile state gets the *bit-identical* optimization result without
//! running a single pass — and a frame rebuilt under a different profile
//! (say, after an unsafe-store conflict taught the profiler a new alias
//! pair) gets a different key and a fresh optimization.
//!
//! One bundle artifact holds every optimized frame of one
//! `(trace, optimizer configuration)` pair, persisted through
//! [`replay_store::Store`] at the end of a run and merged with whatever a
//! concurrent process persisted first. Corrupt bundles — including ones
//! that pass the container checksum but fail decode or the byte-exact
//! re-encode gate — are evicted and the run proceeds cold.
//!
//! Specialized execution plans ([`replay_core::ExecPlan`]) are **not**
//! persisted here: a plan is a cheap, deterministic recompilation of its
//! `OptFrame` (microseconds, triggered by the runner's hit threshold),
//! so storing one would add a second serialized encoding of frame
//! semantics to keep honest for zero warm-start win. Warm runs load the
//! optimized frames and re-earn their plans at runtime.

use replay_core::{frame_codec, AliasProfile, OptConfig, OptFrame, OptScope, OptStats};
use replay_store::{Digest64, Reader, Store, WireError, Writer};
use replay_trace::{trace_digest, Trace};
use std::collections::HashMap;
use std::sync::Arc;

/// Artifact class of persisted frame bundles.
pub(crate) const FRAMES_CLASS: &str = "frames";

/// Stable digest of an optimizer configuration — every field that can
/// change what the pass pipeline produces.
fn opt_config_digest(cfg: &OptConfig) -> u64 {
    let mut d = Digest64::new();
    d.write_u8(match cfg.scope {
        OptScope::Frame => 0,
        OptScope::Block => 1,
        OptScope::InterBlock => 2,
    });
    d.write_bool(cfg.assert_fuse);
    d.write_bool(cfg.const_prop);
    d.write_bool(cfg.cse);
    d.write_bool(cfg.nop_removal);
    d.write_bool(cfg.reassoc);
    d.write_bool(cfg.store_fwd);
    d.write_bool(cfg.speculative_memory);
    d.write_usize(cfg.max_iterations);
    d.write_bool(cfg.reschedule);
    d.finish()
}

/// The bundle artifact key: trace content, optimizer configuration, and
/// the frame codec version (bumping the codec orphans old bundles instead
/// of misreading them).
fn bundle_key(trace: &Trace, cfg: &OptConfig) -> Option<u64> {
    let mut d = Digest64::new();
    d.write_u32(frame_codec::FRAME_CODEC_VERSION);
    d.write_u64(trace_digest(trace).ok()?);
    d.write_u64(opt_config_digest(cfg));
    Some(d.finish())
}

/// Digest of one frame's optimization inputs: the remapped
/// (pre-optimization) frame's exact encoding plus the alias-profile
/// relation restricted to the frame's memory instructions.
///
/// The restriction is sound because the optimizer's only profile query
/// site asks `aliased(a, b)` for x86 addresses of memory uops within the
/// frame being optimized — hashing that whole sub-relation covers every
/// answer the passes can observe.
pub(crate) fn frame_key(raw: &OptFrame, profile: &AliasProfile) -> u64 {
    let mut d = Digest64::new();
    d.write(&frame_codec::encode_frame(raw));
    let mut addrs: Vec<u32> = raw
        .iter()
        .filter(|(_, u)| u.is_load() || u.is_store())
        .map(|(_, u)| u.x86_addr)
        .collect();
    addrs.sort_unstable();
    addrs.dedup();
    for (i, &a) in addrs.iter().enumerate() {
        for &b in &addrs[i..] {
            if profile.aliased(a, b) {
                d.write_u32(a);
                d.write_u32(b);
            }
        }
    }
    d.finish()
}

type Entries = HashMap<u64, (Arc<OptFrame>, OptStats)>;

/// Canonical bundle payload: entries sorted by key, each as
/// `key · frame · stats`. Sorting makes the encoding deterministic, which
/// the decode-side re-encode gate relies on.
fn encode_bundle(entries: &Entries) -> Vec<u8> {
    let mut keys: Vec<u64> = entries.keys().copied().collect();
    keys.sort_unstable();
    let mut w = Writer::new();
    w.put_u32(keys.len() as u32);
    for k in keys {
        let (frame, stats) = &entries[&k];
        w.put_u64(k);
        frame_codec::write_frame(&mut w, frame);
        frame_codec::write_stats(&mut w, stats);
    }
    w.into_bytes()
}

fn decode_bundle(payload: &[u8]) -> Result<Entries, WireError> {
    let mut r = Reader::new(payload);
    let n = r.get_len("bundle entries", 8)?;
    let mut entries = Entries::with_capacity(n);
    for _ in 0..n {
        let key = r.get_u64("entry key")?;
        let frame = frame_codec::read_frame(&mut r)?;
        let stats = frame_codec::read_stats(&mut r)?;
        entries.insert(key, (Arc::new(frame), stats));
    }
    r.finish()?;
    Ok(entries)
}

/// The per-run view of one `(trace, optimizer config)` bundle: loaded
/// once when the run starts, consulted on every frame construction,
/// persisted (merged with the on-disk state) when the run ends.
pub(crate) struct FrameBundle {
    store: &'static Store,
    key: u64,
    entries: Entries,
    dirty: bool,
}

impl FrameBundle {
    /// Loads the bundle for a run, if the process-wide store is enabled.
    ///
    /// A damaged bundle — container-level corruption, a decode failure,
    /// or a payload whose decoded form does not re-encode byte-exactly —
    /// is evicted and the run starts from an empty bundle.
    pub fn open(trace: &Trace, cfg: &OptConfig) -> Option<FrameBundle> {
        let store = Store::global()?;
        let key = bundle_key(trace, cfg)?;
        let entries = match store.load(FRAMES_CLASS, key) {
            Some(payload) => match decode_bundle(&payload) {
                Ok(entries) => {
                    // Round-trip gate: the decoded bundle must mean
                    // exactly what its bytes say.
                    if encode_bundle(&entries) == payload {
                        entries
                    } else {
                        store.evict_corrupt(FRAMES_CLASS, key, "re-encode mismatch");
                        Entries::new()
                    }
                }
                Err(e) => {
                    store.evict_corrupt(FRAMES_CLASS, key, &e.to_string());
                    Entries::new()
                }
            },
            None => Entries::new(),
        };
        Some(FrameBundle {
            store,
            key,
            entries,
            dirty: false,
        })
    }

    /// The cached optimization result for a frame key, if present.
    pub fn get(&self, frame_key: u64) -> Option<(Arc<OptFrame>, OptStats)> {
        self.entries
            .get(&frame_key)
            .map(|(f, s)| (Arc::clone(f), *s))
    }

    /// Records a freshly optimized frame.
    pub fn insert(&mut self, frame_key: u64, frame: Arc<OptFrame>, stats: OptStats) {
        if self.entries.insert(frame_key, (frame, stats)).is_none() {
            self.dirty = true;
        }
    }

    /// Persists the bundle if this run added anything, merging with
    /// whatever another process persisted meanwhile (new entries win ties;
    /// equal keys imply equal content anyway).
    pub fn persist(&self) {
        if !self.dirty {
            return;
        }
        let mut merged = self
            .store
            .load(FRAMES_CLASS, self.key)
            .and_then(|payload| decode_bundle(&payload).ok())
            .unwrap_or_default();
        for (k, v) in &self.entries {
            merged.insert(*k, v.clone());
        }
        self.store
            .save(FRAMES_CLASS, self.key, &encode_bundle(&merged));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use replay_core::optimize;
    use replay_frame::{Frame, FrameId};
    use replay_uop::{ArchReg, Uop};

    fn sample_raw() -> OptFrame {
        let frame = Frame {
            id: FrameId(1),
            start_addr: 0x400,
            uops: vec![
                Uop::store(ArchReg::Esp, -4, ArchReg::Ebp).at(0x400),
                Uop::load(ArchReg::Ebx, ArchReg::Esp, -4).at(0x402),
            ],
            x86_addrs: vec![0x400, 0x402],
            block_starts: vec![0],
            expectations: vec![],
            exit_next: 0x500,
            orig_uop_count: 2,
        };
        OptFrame::from_frame(&frame)
    }

    #[test]
    fn frame_key_sensitive_to_relevant_alias_pairs_only() {
        let raw = sample_raw();
        let empty = AliasProfile::empty();
        let base = frame_key(&raw, &empty);
        assert_eq!(base, frame_key(&raw, &empty), "deterministic");

        // A pair between this frame's memory uops changes the key...
        let mut relevant = AliasProfile::empty();
        relevant.record(0x400, 0x402);
        assert_ne!(frame_key(&raw, &relevant), base);

        // ...a pair between unrelated instructions does not.
        let mut irrelevant = AliasProfile::empty();
        irrelevant.record(0x9000, 0x9004);
        assert_eq!(frame_key(&raw, &irrelevant), base);
    }

    #[test]
    fn bundle_encoding_is_canonical_and_round_trips() {
        let raw = sample_raw();
        let frame = Frame {
            id: FrameId(1),
            start_addr: 0x400,
            uops: vec![
                Uop::store(ArchReg::Esp, -4, ArchReg::Ebp).at(0x400),
                Uop::load(ArchReg::Ebx, ArchReg::Esp, -4).at(0x402),
            ],
            x86_addrs: vec![0x400, 0x402],
            block_starts: vec![0],
            expectations: vec![],
            exit_next: 0x500,
            orig_uop_count: 2,
        };
        let (opt, stats) = optimize(&frame, &AliasProfile::empty(), &OptConfig::default());
        let mut entries = Entries::new();
        entries.insert(7, (Arc::new(opt), stats));
        entries.insert(3, (Arc::new(raw), OptStats::default()));
        let bytes = encode_bundle(&entries);
        let back = decode_bundle(&bytes).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(encode_bundle(&back), bytes, "canonical re-encode");
        let (f, s) = &back[&7];
        assert_eq!(s.store_forwards, stats.store_forwards);
        assert_eq!(f.uop_count(), 1);
    }

    #[test]
    fn corrupt_bundle_decodes_to_error_never_panics() {
        let raw = sample_raw();
        let mut entries = Entries::new();
        entries.insert(1, (Arc::new(raw), OptStats::default()));
        let bytes = encode_bundle(&entries);
        for cut in 0..bytes.len() {
            assert!(decode_bundle(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn config_digest_separates_configurations() {
        let mut seen = std::collections::HashSet::new();
        for cfg in [
            OptConfig::default(),
            OptConfig::none(),
            OptConfig::without("CP"),
            OptConfig::without("SF"),
            OptConfig::without("CSE"),
            OptConfig::block_scope(),
            OptConfig::inter_block_scope(),
        ] {
            assert!(
                seen.insert(opt_config_digest(&cfg)),
                "digest collision for {cfg:?}"
            );
        }
    }
}
