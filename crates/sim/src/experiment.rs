//! Experiment drivers: one function per table / figure of the paper.
//!
//! Every driver runs the synthetic workload suite through the relevant
//! configurations and returns structured rows that the benchmark harnesses
//! print. The traces are generated once per workload and shared across
//! configurations, so comparisons are paired.

use crate::{simulate, ConfigKind, SimConfig, SimResult};
use replay_core::OptConfig;
use replay_timing::CycleBin;
use replay_trace::{workloads, Suite, Trace, Workload};

/// Runs one workload (all its trace segments) through one configuration
/// and aggregates the per-segment results.
pub fn run_workload_config(traces: &[Trace], name: &str, cfg: &SimConfig) -> SimResult {
    assert!(!traces.is_empty(), "workload has no traces");
    let mut merged: Option<SimResult> = None;
    for t in traces {
        let r = simulate(t, cfg);
        match &mut merged {
            Some(m) => m.merge(&r),
            None => merged = Some(r),
        }
    }
    let mut result = merged.expect("at least one trace");
    result.workload = name.to_string();
    result
}

/// A row of the Figure 6 IPC comparison.
#[derive(Debug, Clone)]
pub struct IpcRow {
    /// Workload name.
    pub name: String,
    /// Suite membership.
    pub suite: Suite,
    /// IPC for each configuration, in [`ConfigKind::ALL`] order
    /// (IC, TC, RP, RPO).
    pub ipc: [f64; 4],
    /// Percent IPC increase of RPO over RP (the number printed above the
    /// RPO bars in the paper).
    pub rpo_gain_pct: f64,
    /// Frame coverage under RP.
    pub coverage: f64,
    /// Fraction of cycles lost to assertions under RPO.
    pub assert_cycle_frac: f64,
}

/// Figure 6: estimated x86 instructions retired per cycle for the ICache,
/// Trace-Cache, rePLay, and rePLay+Optimization configurations, plus the
/// §6.1 side observations (coverage, assert cycles).
pub fn ipc_comparison(scale: usize) -> Vec<IpcRow> {
    workloads::all().iter().map(|w| ipc_row(w, scale)).collect()
}

/// One workload's Figure 6 row.
pub fn ipc_row(w: &Workload, scale: usize) -> IpcRow {
    let traces = w.traces_scaled(scale);
    let mut ipc = [0.0f64; 4];
    let mut coverage = 0.0;
    let mut assert_frac = 0.0;
    let mut rp = 0.0;
    let mut rpo = 0.0;
    for (i, kind) in ConfigKind::ALL.into_iter().enumerate() {
        let r = run_workload_config(&traces, w.name, &SimConfig::new(kind).without_verify());
        ipc[i] = r.ipc();
        match kind {
            ConfigKind::Replay => {
                coverage = r.coverage;
                rp = r.ipc();
            }
            ConfigKind::ReplayOpt => {
                assert_frac = r.bins.fraction(CycleBin::Assert);
                rpo = r.ipc();
            }
            _ => {}
        }
    }
    IpcRow {
        name: w.name.to_string(),
        suite: w.suite,
        ipc,
        rpo_gain_pct: if rp > 0.0 {
            (rpo / rp - 1.0) * 100.0
        } else {
            0.0
        },
        coverage,
        assert_cycle_frac: assert_frac,
    }
}

/// A row of the Figures 7/8 cycle breakdown: RP and RPO bins side by side.
#[derive(Debug, Clone)]
pub struct BreakdownRow {
    /// Workload name.
    pub name: String,
    /// Suite membership.
    pub suite: Suite,
    /// RP cycle bins.
    pub rp: replay_timing::CycleBins,
    /// RPO cycle bins.
    pub rpo: replay_timing::CycleBins,
}

/// Figures 7 (SPEC) and 8 (desktop): per-benchmark execution cycles for
/// the RP and RPO configurations, classified by fetch event.
pub fn cycle_breakdown(suite: Suite, scale: usize) -> Vec<BreakdownRow> {
    workloads::all()
        .iter()
        .filter(|w| w.suite == suite)
        .map(|w| {
            let traces = w.traces_scaled(scale);
            let rp = run_workload_config(
                &traces,
                w.name,
                &SimConfig::new(ConfigKind::Replay).without_verify(),
            );
            let rpo = run_workload_config(
                &traces,
                w.name,
                &SimConfig::new(ConfigKind::ReplayOpt).without_verify(),
            );
            BreakdownRow {
                name: w.name.to_string(),
                suite: w.suite,
                rp: rp.bins,
                rpo: rpo.bins,
            }
        })
        .collect()
}

/// A row of Table 3.
#[derive(Debug, Clone)]
pub struct RemovalRow {
    /// Workload name.
    pub name: String,
    /// Fraction of dynamic uops removed by the optimizer.
    pub uops_removed: f64,
    /// Fraction of dynamic loads removed.
    pub loads_removed: f64,
    /// Percent IPC increase of RPO over RP.
    pub ipc_increase_pct: f64,
}

/// Table 3: the percentage of micro-operations and loads removed by the
/// rePLay optimizer, and the resulting IPC increase.
pub fn removal_table(scale: usize) -> Vec<RemovalRow> {
    workloads::all()
        .iter()
        .map(|w| {
            let traces = w.traces_scaled(scale);
            let rp = run_workload_config(
                &traces,
                w.name,
                &SimConfig::new(ConfigKind::Replay).without_verify(),
            );
            let rpo = run_workload_config(
                &traces,
                w.name,
                &SimConfig::new(ConfigKind::ReplayOpt).without_verify(),
            );
            RemovalRow {
                name: w.name.to_string(),
                uops_removed: rpo.uop_removal(),
                loads_removed: rpo.load_removal(),
                ipc_increase_pct: if rp.ipc() > 0.0 {
                    (rpo.ipc() / rp.ipc() - 1.0) * 100.0
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// Averages a column of [`RemovalRow`]s.
pub fn removal_averages(rows: &[RemovalRow]) -> (f64, f64, f64) {
    let n = rows.len().max(1) as f64;
    (
        rows.iter().map(|r| r.uops_removed).sum::<f64>() / n,
        rows.iter().map(|r| r.loads_removed).sum::<f64>() / n,
        rows.iter().map(|r| r.ipc_increase_pct).sum::<f64>() / n,
    )
}

/// A row of the Figure 9 scope comparison.
#[derive(Debug, Clone)]
pub struct ScopeRow {
    /// Workload name.
    pub name: String,
    /// Percent IPC speedup of block-scope optimization over RP.
    pub block_pct: f64,
    /// Percent IPC speedup of frame-scope optimization over RP.
    pub frame_pct: f64,
}

/// Figure 9: percent IPC increase when frames are optimized only within
/// individual basic blocks versus as a unit.
pub fn scope_comparison(scale: usize) -> Vec<ScopeRow> {
    workloads::all()
        .iter()
        .map(|w| {
            let traces = w.traces_scaled(scale);
            let rp = run_workload_config(
                &traces,
                w.name,
                &SimConfig::new(ConfigKind::Replay).without_verify(),
            );
            let block = run_workload_config(
                &traces,
                w.name,
                &SimConfig::new(ConfigKind::ReplayOpt)
                    .with_opt(OptConfig::block_scope())
                    .without_verify(),
            );
            let frame = run_workload_config(
                &traces,
                w.name,
                &SimConfig::new(ConfigKind::ReplayOpt).without_verify(),
            );
            let pct = |x: &SimResult| {
                if rp.ipc() > 0.0 {
                    (x.ipc() / rp.ipc() - 1.0) * 100.0
                } else {
                    0.0
                }
            };
            ScopeRow {
                name: w.name.to_string(),
                block_pct: pct(&block),
                frame_pct: pct(&frame),
            }
        })
        .collect()
}

/// The Figure 10 leave-one-out labels, in the paper's legend order.
pub const ABLATION_LABELS: [&str; 6] = ["ASST", "CP", "CSE", "NOP", "RA", "SF"];

/// The five applications the paper plots in Figure 10.
pub const ABLATION_APPS: [&str; 5] = ["bzip2", "crafty", "vortex", "dream", "excel"];

/// A row of the Figure 10 ablation: IPC of each leave-one-out trial on the
/// paper's 0(=RP)..1(=RPO) relative scale.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Workload name.
    pub name: String,
    /// Relative IPC with each optimization disabled, in
    /// [`ABLATION_LABELS`] order: 0 = RP performance, 1 = full RPO.
    pub relative: [f64; 6],
    /// Absolute IPC of the RP baseline.
    pub rp_ipc: f64,
    /// Absolute IPC of full RPO.
    pub rpo_ipc: f64,
    /// Where full RPO lands on the same relative scale (exactly 1.0 unless
    /// the normalization floor engaged because RPO ≈ RP).
    pub rpo_relative: f64,
}

/// Figure 10: the performance impact of disabling each optimization
/// individually (dead-code elimination always stays enabled).
pub fn ablation(apps: &[&str], scale: usize) -> Vec<AblationRow> {
    apps.iter()
        .map(|name| {
            let w = workloads::by_name(name).expect("known workload");
            let traces = w.traces_scaled(scale);
            let rp = run_workload_config(
                &traces,
                w.name,
                &SimConfig::new(ConfigKind::Replay).without_verify(),
            )
            .ipc();
            let rpo = run_workload_config(
                &traces,
                w.name,
                &SimConfig::new(ConfigKind::ReplayOpt).without_verify(),
            )
            .ipc();
            // Guard the normalization: when optimization is near-neutral
            // on an application (as on excel, where speculative aborts eat
            // the gains), the raw span would explode the relative scale.
            let span = (rpo - rp).abs().max(0.03 * rp).max(1e-9);
            let mut relative = [0.0f64; 6];
            for (i, label) in ABLATION_LABELS.iter().enumerate() {
                let r = run_workload_config(
                    &traces,
                    w.name,
                    &SimConfig::new(ConfigKind::ReplayOpt)
                        .with_opt(OptConfig::without(label))
                        .without_verify(),
                );
                relative[i] = (r.ipc() - rp) / span;
            }
            AblationRow {
                name: w.name.to_string(),
                relative,
                rp_ipc: rp,
                rpo_ipc: rpo,
                rpo_relative: (rpo - rp) / span,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_row_has_all_configs() {
        let w = workloads::by_name("eon").unwrap();
        let row = ipc_row(&w, 4_000);
        assert!(row.ipc.iter().all(|&v| v > 0.0), "{:?}", row.ipc);
        assert!(row.coverage > 0.0);
    }

    #[test]
    fn removal_averages_compute() {
        let rows = vec![
            RemovalRow {
                name: "a".into(),
                uops_removed: 0.2,
                loads_removed: 0.3,
                ipc_increase_pct: 10.0,
            },
            RemovalRow {
                name: "b".into(),
                uops_removed: 0.4,
                loads_removed: 0.1,
                ipc_increase_pct: 30.0,
            },
        ];
        let (u, l, i) = removal_averages(&rows);
        assert!((u - 0.3).abs() < 1e-12);
        assert!((l - 0.2).abs() < 1e-12);
        assert!((i - 20.0).abs() < 1e-12);
    }

    #[test]
    fn ablation_rows_cover_labels() {
        let rows = ablation(&["bzip2"], 3_000);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].relative.len(), ABLATION_LABELS.len());
    }
}
