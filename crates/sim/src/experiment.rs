//! Experiment drivers: one function per table / figure of the paper.
//!
//! Every driver expands its workloads × configurations grid into a batch
//! of [`SimSpec`]s and hands the batch to [`run_specs`], which fans the
//! individual `(workload, segment, configuration)` jobs across a scoped
//! worker pool ([`crate::parallel`]). Traces come from the process-wide
//! [`TraceStore`], so each segment is synthesized once and shared by every
//! driver and configuration.
//!
//! Parallelism never changes the numbers: each job is a pure function of
//! its inputs, results are collected in submission order, and segments
//! merge in the same order as the serial loop — so driver output is
//! bit-identical for every worker count. The plain driver functions size
//! the pool with [`parallel::job_count`] (`REPLAY_JOBS` or all cores);
//! the `*_jobs` variants take an explicit count (`1` = run serially on
//! the calling thread).

use crate::{parallel, simulate, ConfigKind, SimConfig, SimResult, TraceStore};
use replay_core::OptConfig;
use replay_timing::{CoreModel, CycleBin};
use replay_trace::{workloads, Suite, Trace, Workload};
use std::sync::Arc;

/// The standard driver configuration: verification off (the drivers
/// reproduce figures, not soundness checks) under the given core model.
fn cfg_model(kind: ConfigKind, model: CoreModel) -> SimConfig {
    SimConfig::new(kind).without_verify().with_core_model(model)
}

/// One simulation request: a workload's trace segments through one
/// configuration. [`run_specs`] simulates the segments (possibly on
/// different threads) and merges them, in order, into one [`SimResult`].
#[derive(Debug, Clone)]
pub struct SimSpec {
    /// Name stamped on the merged result.
    pub name: String,
    /// The workload's trace segments, shared with other specs and threads.
    pub traces: Vec<Arc<Trace>>,
    /// The configuration to simulate.
    pub cfg: SimConfig,
}

impl SimSpec {
    /// A spec for `workload`'s memoized traces under `cfg`.
    pub fn for_workload(workload: &Workload, scale: usize, cfg: SimConfig) -> SimSpec {
        SimSpec {
            name: workload.name.to_string(),
            traces: TraceStore::global().traces(workload, scale),
            cfg,
        }
    }
}

/// Runs a batch of specs on `jobs` worker threads and returns one merged
/// result per spec, in spec order.
///
/// The unit of parallelism is the *segment*, not the spec, so a handful of
/// specs with several segments each still saturates the pool. Segment
/// results merge in segment order — the same fold the serial path uses —
/// which keeps every floating-point aggregate bit-identical regardless of
/// `jobs`.
///
/// # Panics
///
/// Panics if a spec has no traces.
pub fn run_specs(specs: &[SimSpec], jobs: usize) -> Vec<SimResult> {
    let flat: Vec<(usize, usize)> = specs
        .iter()
        .enumerate()
        .flat_map(|(si, s)| (0..s.traces.len()).map(move |gi| (si, gi)))
        .collect();
    let mut seg_results = parallel::par_map(jobs, &flat, |&(si, gi)| {
        simulate(&specs[si].traces[gi], &specs[si].cfg)
    })
    .into_iter();
    specs
        .iter()
        .map(|s| {
            assert!(!s.traces.is_empty(), "spec {} has no traces", s.name);
            let mut merged: Option<SimResult> = None;
            for _ in 0..s.traces.len() {
                let r = seg_results.next().expect("one result per segment");
                match &mut merged {
                    Some(m) => m.merge(&r),
                    None => merged = Some(r),
                }
            }
            let mut result = merged.expect("at least one trace");
            result.workload = s.name.clone();
            result
        })
        .collect()
}

/// Runs one workload (all its trace segments) through one configuration
/// and aggregates the per-segment results — the serial reference path
/// [`run_specs`] must match bit for bit.
pub fn run_workload_config(traces: &[Trace], name: &str, cfg: &SimConfig) -> SimResult {
    assert!(!traces.is_empty(), "workload has no traces");
    let mut merged: Option<SimResult> = None;
    for t in traces {
        let r = simulate(t, cfg);
        match &mut merged {
            Some(m) => m.merge(&r),
            None => merged = Some(r),
        }
    }
    let mut result = merged.expect("at least one trace");
    result.workload = name.to_string();
    result
}

/// A row of the Figure 6 IPC comparison.
#[derive(Debug, Clone)]
pub struct IpcRow {
    /// Workload name.
    pub name: String,
    /// Suite membership.
    pub suite: Suite,
    /// IPC for each configuration, in [`ConfigKind::ALL`] order
    /// (IC, TC, RP, RPO).
    pub ipc: [f64; 4],
    /// Percent IPC increase of RPO over RP (the number printed above the
    /// RPO bars in the paper).
    pub rpo_gain_pct: f64,
    /// Frame coverage under RP.
    pub coverage: f64,
    /// Fraction of cycles lost to assertions under RPO.
    pub assert_cycle_frac: f64,
}

/// Builds one Figure 6 row from the four per-configuration results (in
/// [`ConfigKind::ALL`] order).
fn ipc_row_from(w: &Workload, results: &[SimResult]) -> IpcRow {
    let mut ipc = [0.0f64; 4];
    let mut coverage = 0.0;
    let mut assert_frac = 0.0;
    let mut rp = 0.0;
    let mut rpo = 0.0;
    for (i, kind) in ConfigKind::ALL.into_iter().enumerate() {
        let r = &results[i];
        ipc[i] = r.ipc();
        match kind {
            ConfigKind::Replay => {
                coverage = r.coverage;
                rp = r.ipc();
            }
            ConfigKind::ReplayOpt => {
                assert_frac = r.bins.fraction(CycleBin::Assert);
                rpo = r.ipc();
            }
            _ => {}
        }
    }
    IpcRow {
        name: w.name.to_string(),
        suite: w.suite,
        ipc,
        rpo_gain_pct: if rp > 0.0 {
            (rpo / rp - 1.0) * 100.0
        } else {
            0.0
        },
        coverage,
        assert_cycle_frac: assert_frac,
    }
}

/// The four per-configuration specs of one Figure 6 row.
fn ipc_specs(w: &Workload, scale: usize, model: CoreModel) -> Vec<SimSpec> {
    ConfigKind::ALL
        .into_iter()
        .map(|kind| SimSpec::for_workload(w, scale, cfg_model(kind, model)))
        .collect()
}

/// Figure 6: estimated x86 instructions retired per cycle for the ICache,
/// Trace-Cache, rePLay, and rePLay+Optimization configurations, plus the
/// §6.1 side observations (coverage, assert cycles).
pub fn ipc_comparison(scale: usize) -> Vec<IpcRow> {
    ipc_comparison_jobs(scale, parallel::job_count())
}

/// [`ipc_comparison`] with an explicit worker count.
pub fn ipc_comparison_jobs(scale: usize, jobs: usize) -> Vec<IpcRow> {
    ipc_comparison_model(scale, jobs, CoreModel::Generic)
}

/// [`ipc_comparison`] under an explicit execution-core model.
pub fn ipc_comparison_model(scale: usize, jobs: usize, model: CoreModel) -> Vec<IpcRow> {
    let ws = workloads::all();
    TraceStore::global().prefetch(&ws, scale, jobs);
    let specs: Vec<SimSpec> = ws.iter().flat_map(|w| ipc_specs(w, scale, model)).collect();
    let results = run_specs(&specs, jobs);
    ws.iter()
        .zip(results.chunks_exact(ConfigKind::ALL.len()))
        .map(|(w, rs)| ipc_row_from(w, rs))
        .collect()
}

/// One workload's Figure 6 row.
pub fn ipc_row(w: &Workload, scale: usize) -> IpcRow {
    ipc_row_jobs(w, scale, parallel::job_count())
}

/// [`ipc_row`] with an explicit worker count.
pub fn ipc_row_jobs(w: &Workload, scale: usize, jobs: usize) -> IpcRow {
    let results = run_specs(&ipc_specs(w, scale, CoreModel::Generic), jobs);
    ipc_row_from(w, &results)
}

/// The RP-versus-RPO comparison of one workload at one scale — the
/// measurement a stress sweep takes at every step along a corner
/// trajectory, and the signal whose collapse `replay sweep` hunts for.
#[derive(Debug, Clone, Copy)]
pub struct GainPoint {
    /// IPC under the rePLay (unoptimized) configuration.
    pub rp_ipc: f64,
    /// IPC under rePLay + optimization.
    pub rpo_ipc: f64,
    /// Percent IPC increase of RPO over RP (0.0 when RP retired nothing).
    pub rpo_gain_pct: f64,
    /// Frame coverage under RP.
    pub coverage: f64,
    /// Fraction of cycles lost to assertions under RPO.
    pub assert_cycle_frac: f64,
}

/// The two specs — RP then RPO — of one [`GainPoint`], in the order
/// [`gain_from`] expects. Exposed separately from [`rpo_gain_jobs`] so a
/// sweep can batch many points through a single [`run_specs`] call.
pub fn gain_specs(w: &Workload, scale: usize) -> Vec<SimSpec> {
    [ConfigKind::Replay, ConfigKind::ReplayOpt]
        .into_iter()
        .map(|kind| SimSpec::for_workload(w, scale, SimConfig::new(kind).without_verify()))
        .collect()
}

/// Folds a consecutive `(RP, RPO)` result pair into a [`GainPoint`].
pub fn gain_from(rp: &SimResult, rpo: &SimResult) -> GainPoint {
    GainPoint {
        rp_ipc: rp.ipc(),
        rpo_ipc: rpo.ipc(),
        rpo_gain_pct: if rp.ipc() > 0.0 {
            (rpo.ipc() / rp.ipc() - 1.0) * 100.0
        } else {
            0.0
        },
        coverage: rp.coverage,
        assert_cycle_frac: rpo.bins.fraction(CycleBin::Assert),
    }
}

/// One workload's [`GainPoint`] with an explicit worker count.
pub fn rpo_gain_jobs(w: &Workload, scale: usize, jobs: usize) -> GainPoint {
    let results = run_specs(&gain_specs(w, scale), jobs);
    gain_from(&results[0], &results[1])
}

/// A row of the Figures 7/8 cycle breakdown: RP and RPO bins side by side.
#[derive(Debug, Clone)]
pub struct BreakdownRow {
    /// Workload name.
    pub name: String,
    /// Suite membership.
    pub suite: Suite,
    /// RP cycle bins.
    pub rp: replay_timing::CycleBins,
    /// RPO cycle bins.
    pub rpo: replay_timing::CycleBins,
}

/// Figures 7 (SPEC) and 8 (desktop): per-benchmark execution cycles for
/// the RP and RPO configurations, classified by fetch event.
pub fn cycle_breakdown(suite: Suite, scale: usize) -> Vec<BreakdownRow> {
    cycle_breakdown_jobs(suite, scale, parallel::job_count())
}

/// [`cycle_breakdown`] with an explicit worker count.
pub fn cycle_breakdown_jobs(suite: Suite, scale: usize, jobs: usize) -> Vec<BreakdownRow> {
    cycle_breakdown_model(suite, scale, jobs, CoreModel::Generic)
}

/// [`cycle_breakdown`] under an explicit execution-core model.
pub fn cycle_breakdown_model(
    suite: Suite,
    scale: usize,
    jobs: usize,
    model: CoreModel,
) -> Vec<BreakdownRow> {
    let ws: Vec<Workload> = workloads::all()
        .into_iter()
        .filter(|w| w.suite == suite)
        .collect();
    TraceStore::global().prefetch(&ws, scale, jobs);
    let specs: Vec<SimSpec> = ws
        .iter()
        .flat_map(|w| {
            [ConfigKind::Replay, ConfigKind::ReplayOpt]
                .map(|kind| SimSpec::for_workload(w, scale, cfg_model(kind, model)))
        })
        .collect();
    let results = run_specs(&specs, jobs);
    ws.iter()
        .zip(results.chunks_exact(2))
        .map(|(w, rs)| BreakdownRow {
            name: w.name.to_string(),
            suite: w.suite,
            rp: rs[0].bins,
            rpo: rs[1].bins,
        })
        .collect()
}

/// A row of Table 3.
#[derive(Debug, Clone)]
pub struct RemovalRow {
    /// Workload name.
    pub name: String,
    /// Fraction of dynamic uops removed by the optimizer.
    pub uops_removed: f64,
    /// Fraction of dynamic loads removed.
    pub loads_removed: f64,
    /// Percent IPC increase of RPO over RP.
    pub ipc_increase_pct: f64,
}

/// Table 3: the percentage of micro-operations and loads removed by the
/// rePLay optimizer, and the resulting IPC increase.
pub fn removal_table(scale: usize) -> Vec<RemovalRow> {
    removal_table_jobs(scale, parallel::job_count())
}

/// [`removal_table`] with an explicit worker count.
pub fn removal_table_jobs(scale: usize, jobs: usize) -> Vec<RemovalRow> {
    removal_table_model(scale, jobs, CoreModel::Generic)
}

/// [`removal_table`] under an explicit execution-core model.
pub fn removal_table_model(scale: usize, jobs: usize, model: CoreModel) -> Vec<RemovalRow> {
    let ws = workloads::all();
    TraceStore::global().prefetch(&ws, scale, jobs);
    let specs: Vec<SimSpec> = ws
        .iter()
        .flat_map(|w| {
            [ConfigKind::Replay, ConfigKind::ReplayOpt]
                .map(|kind| SimSpec::for_workload(w, scale, cfg_model(kind, model)))
        })
        .collect();
    let results = run_specs(&specs, jobs);
    ws.iter()
        .zip(results.chunks_exact(2))
        .map(|(w, rs)| {
            let (rp, rpo) = (&rs[0], &rs[1]);
            RemovalRow {
                name: w.name.to_string(),
                uops_removed: rpo.uop_removal(),
                loads_removed: rpo.load_removal(),
                ipc_increase_pct: if rp.ipc() > 0.0 {
                    (rpo.ipc() / rp.ipc() - 1.0) * 100.0
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// Averages a column of [`RemovalRow`]s.
pub fn removal_averages(rows: &[RemovalRow]) -> (f64, f64, f64) {
    let n = rows.len().max(1) as f64;
    (
        rows.iter().map(|r| r.uops_removed).sum::<f64>() / n,
        rows.iter().map(|r| r.loads_removed).sum::<f64>() / n,
        rows.iter().map(|r| r.ipc_increase_pct).sum::<f64>() / n,
    )
}

/// A row of the Figure 9 scope comparison.
#[derive(Debug, Clone)]
pub struct ScopeRow {
    /// Workload name.
    pub name: String,
    /// Percent IPC speedup of block-scope optimization over RP.
    pub block_pct: f64,
    /// Percent IPC speedup of frame-scope optimization over RP.
    pub frame_pct: f64,
}

/// Figure 9: percent IPC increase when frames are optimized only within
/// individual basic blocks versus as a unit.
pub fn scope_comparison(scale: usize) -> Vec<ScopeRow> {
    scope_comparison_jobs(scale, parallel::job_count())
}

/// [`scope_comparison`] with an explicit worker count.
pub fn scope_comparison_jobs(scale: usize, jobs: usize) -> Vec<ScopeRow> {
    scope_comparison_model(scale, jobs, CoreModel::Generic)
}

/// [`scope_comparison`] under an explicit execution-core model.
pub fn scope_comparison_model(scale: usize, jobs: usize, model: CoreModel) -> Vec<ScopeRow> {
    let ws = workloads::all();
    TraceStore::global().prefetch(&ws, scale, jobs);
    let specs: Vec<SimSpec> = ws
        .iter()
        .flat_map(|w| {
            [
                cfg_model(ConfigKind::Replay, model),
                cfg_model(ConfigKind::ReplayOpt, model).with_opt(OptConfig::block_scope()),
                cfg_model(ConfigKind::ReplayOpt, model),
            ]
            .map(|cfg| SimSpec::for_workload(w, scale, cfg))
        })
        .collect();
    let results = run_specs(&specs, jobs);
    ws.iter()
        .zip(results.chunks_exact(3))
        .map(|(w, rs)| {
            let (rp, block, frame) = (&rs[0], &rs[1], &rs[2]);
            let pct = |x: &SimResult| {
                if rp.ipc() > 0.0 {
                    (x.ipc() / rp.ipc() - 1.0) * 100.0
                } else {
                    0.0
                }
            };
            ScopeRow {
                name: w.name.to_string(),
                block_pct: pct(block),
                frame_pct: pct(frame),
            }
        })
        .collect()
}

/// The Figure 10 leave-one-out labels, in the paper's legend order.
pub const ABLATION_LABELS: [&str; 6] = ["ASST", "CP", "CSE", "NOP", "RA", "SF"];

/// The five applications the paper plots in Figure 10.
pub const ABLATION_APPS: [&str; 5] = ["bzip2", "crafty", "vortex", "dream", "excel"];

/// A row of the Figure 10 ablation: IPC of each leave-one-out trial on the
/// paper's 0(=RP)..1(=RPO) relative scale.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Workload name.
    pub name: String,
    /// Relative IPC with each optimization disabled, in
    /// [`ABLATION_LABELS`] order: 0 = RP performance, 1 = full RPO.
    pub relative: [f64; 6],
    /// Absolute IPC of the RP baseline.
    pub rp_ipc: f64,
    /// Absolute IPC of full RPO.
    pub rpo_ipc: f64,
    /// Where full RPO lands on the same relative scale (exactly 1.0 unless
    /// the normalization floor engaged because RPO ≈ RP).
    pub rpo_relative: f64,
}

/// Figure 10: the performance impact of disabling each optimization
/// individually (dead-code elimination always stays enabled).
pub fn ablation(apps: &[&str], scale: usize) -> Vec<AblationRow> {
    ablation_jobs(apps, scale, parallel::job_count())
}

/// [`ablation`] with an explicit worker count.
pub fn ablation_jobs(apps: &[&str], scale: usize, jobs: usize) -> Vec<AblationRow> {
    ablation_model(apps, scale, jobs, CoreModel::Generic)
}

/// [`ablation`] under an explicit execution-core model.
pub fn ablation_model(
    apps: &[&str],
    scale: usize,
    jobs: usize,
    model: CoreModel,
) -> Vec<AblationRow> {
    let ws: Vec<Workload> = apps
        .iter()
        .map(|name| workloads::by_name(name).expect("known workload"))
        .collect();
    TraceStore::global().prefetch(&ws, scale, jobs);
    // Per app: RP, full RPO, then the six leave-one-out trials — all
    // submitted as one batch so the pool stays busy across apps.
    let specs: Vec<SimSpec> = ws
        .iter()
        .flat_map(|w| {
            let mut cfgs = vec![
                cfg_model(ConfigKind::Replay, model),
                cfg_model(ConfigKind::ReplayOpt, model),
            ];
            cfgs.extend(ABLATION_LABELS.iter().map(|label| {
                cfg_model(ConfigKind::ReplayOpt, model).with_opt(OptConfig::without(label))
            }));
            cfgs.into_iter()
                .map(|cfg| SimSpec::for_workload(w, scale, cfg))
                .collect::<Vec<_>>()
        })
        .collect();
    let results = run_specs(&specs, jobs);
    ws.iter()
        .zip(results.chunks_exact(2 + ABLATION_LABELS.len()))
        .map(|(w, rs)| {
            let rp = rs[0].ipc();
            let rpo = rs[1].ipc();
            // Guard the normalization: when optimization is near-neutral
            // on an application (as on excel, where speculative aborts eat
            // the gains), the raw span would explode the relative scale.
            let span = (rpo - rp).abs().max(0.03 * rp).max(1e-9);
            let mut relative = [0.0f64; 6];
            for (i, r) in rs[2..].iter().enumerate() {
                relative[i] = (r.ipc() - rp) / span;
            }
            AblationRow {
                name: w.name.to_string(),
                relative,
                rp_ipc: rp,
                rpo_ipc: rpo,
                rpo_relative: (rpo - rp) / span,
            }
        })
        .collect()
}

/// The seven optimizer passes as profit-ranking rows: the six Figure 10
/// leave-one-out labels plus always-on dead-code elimination.
pub const PROFIT_PASSES: [&str; 7] = ["NOP", "CP", "RA", "ASST", "SF", "CSE", "DCE"];

/// One pass's measured contribution to the RPO speedup under one core
/// model.
#[derive(Debug, Clone, Copy)]
pub struct PassProfit {
    /// Pass label ([`PROFIT_PASSES`]; `SF` is the `MemoryOpt` pass).
    pub pass: &'static str,
    /// Profit in percentage points of RP IPC (see [`pass_profit_jobs`]
    /// for the two measurement bases).
    pub profit_pct: f64,
}

/// Measures every pass's profit, averaged over `apps`, under `model`.
///
/// Two measurement bases, both in percentage points of the RP baseline's
/// IPC:
///
/// * the six ablatable passes are measured leave-one-out, as in
///   Figure 10: `(ipc(RPO) − ipc(RPO without pass)) / ipc(RP) × 100`;
/// * `DCE` cannot be disabled (every other pass relies on its
///   collection), so it is measured solo:
///   `(ipc(DCE only) − ipc(RP)) / ipc(RP) × 100`.
///
/// Rows come back in [`PROFIT_PASSES`] order; rank by `profit_pct` to
/// obtain the profit ranking. Because the optimizer itself is identical
/// under both core models (it removes the same uops), any ranking shift
/// between models is purely a *timing* effect — which resources the
/// removed uops would have contended for.
pub fn pass_profit_jobs(
    apps: &[&str],
    scale: usize,
    jobs: usize,
    model: CoreModel,
) -> Vec<PassProfit> {
    let ws: Vec<Workload> = apps
        .iter()
        .map(|name| workloads::by_name(name).expect("known workload"))
        .collect();
    TraceStore::global().prefetch(&ws, scale, jobs);
    // OptConfig with every ablatable pass off: only DCE (which has no
    // flag — it is the collector the pipeline always runs) remains.
    let dce_only = ABLATION_LABELS
        .iter()
        .fold(OptConfig::default(), |cfg, label| {
            let mut c = cfg;
            match *label {
                "ASST" => c.assert_fuse = false,
                "CP" => c.const_prop = false,
                "CSE" => c.cse = false,
                "NOP" => c.nop_removal = false,
                "RA" => c.reassoc = false,
                "SF" => c.store_fwd = false,
                _ => unreachable!(),
            }
            c
        });
    // Per app: RP, RPO, six leave-one-out trials, DCE-only — one batch.
    let specs: Vec<SimSpec> = ws
        .iter()
        .flat_map(|w| {
            let mut cfgs = vec![
                cfg_model(ConfigKind::Replay, model),
                cfg_model(ConfigKind::ReplayOpt, model),
            ];
            cfgs.extend(ABLATION_LABELS.iter().map(|label| {
                cfg_model(ConfigKind::ReplayOpt, model).with_opt(OptConfig::without(label))
            }));
            cfgs.push(cfg_model(ConfigKind::ReplayOpt, model).with_opt(dce_only.clone()));
            cfgs.into_iter()
                .map(|cfg| SimSpec::for_workload(w, scale, cfg))
                .collect::<Vec<_>>()
        })
        .collect();
    let results = run_specs(&specs, jobs);
    let per_app = 3 + ABLATION_LABELS.len();
    let napps = ws.len().max(1) as f64;
    let mut profit: Vec<PassProfit> = PROFIT_PASSES
        .into_iter()
        .map(|pass| PassProfit {
            pass,
            profit_pct: 0.0,
        })
        .collect();
    for rs in results.chunks_exact(per_app) {
        let rp = rs[0].ipc();
        if rp <= 0.0 {
            continue;
        }
        let rpo = rs[1].ipc();
        let dce = rs[2 + ABLATION_LABELS.len()].ipc();
        for p in profit.iter_mut() {
            let pct = if p.pass == "DCE" {
                (dce - rp) / rp * 100.0
            } else {
                let i = ABLATION_LABELS
                    .iter()
                    .position(|l| l == &p.pass)
                    .expect("profit pass is an ablation label");
                (rpo - rs[2 + i].ipc()) / rp * 100.0
            };
            p.profit_pct += pct / napps;
        }
    }
    profit
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_row_has_all_configs() {
        let w = workloads::by_name("eon").unwrap();
        let row = ipc_row(&w, 4_000);
        assert!(row.ipc.iter().all(|&v| v > 0.0), "{:?}", row.ipc);
        assert!(row.coverage > 0.0);
    }

    #[test]
    fn ipc_row_from_empty_results_is_finite() {
        // Regression: a degenerate run (empty or fully-asserting trace)
        // retires nothing, so every per-config IPC is 0. The RPO-over-RP
        // gain must define the 0/0 case as 0.0 — a NaN or inf here leaks
        // into `replay report --json` as invalid JSON.
        let w = workloads::by_name("eon").unwrap();
        let empty = |kind| SimResult {
            workload: w.name.to_string(),
            config: kind,
            cycles: 0,
            x86_retired: 0,
            bins: replay_timing::CycleBins::new(),
            pipeline: replay_timing::PipelineStats::default(),
            opt_stats: replay_core::OptStats::default(),
            dyn_uops_total: 0,
            dyn_uops_removed: 0,
            dyn_loads_total: 0,
            dyn_loads_removed: 0,
            constructor: replay_frame::ConstructorStats::default(),
            coverage: 0.0,
            assert_events: 0,
            path_mismatches: 0,
            verify: replay_verify::VerifyStats::default(),
            uop_ratio: 0.0,
            profile: replay_obs::Profile::new(),
        };
        let results: Vec<SimResult> = ConfigKind::ALL.into_iter().map(empty).collect();
        let row = ipc_row_from(&w, &results);
        assert_eq!(row.rpo_gain_pct, 0.0, "degenerate gain is defined as 0.0");
        assert!(row.rpo_gain_pct.is_finite());
        assert!(row.ipc.iter().all(|v| v.is_finite()));
        assert!(row.coverage.is_finite() && row.assert_cycle_frac.is_finite());
    }

    #[test]
    fn removal_averages_compute() {
        let rows = vec![
            RemovalRow {
                name: "a".into(),
                uops_removed: 0.2,
                loads_removed: 0.3,
                ipc_increase_pct: 10.0,
            },
            RemovalRow {
                name: "b".into(),
                uops_removed: 0.4,
                loads_removed: 0.1,
                ipc_increase_pct: 30.0,
            },
        ];
        let (u, l, i) = removal_averages(&rows);
        assert!((u - 0.3).abs() < 1e-12);
        assert!((l - 0.2).abs() < 1e-12);
        assert!((i - 20.0).abs() < 1e-12);
    }

    #[test]
    fn ablation_rows_cover_labels() {
        let rows = ablation(&["bzip2"], 3_000);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].relative.len(), ABLATION_LABELS.len());
    }

    #[test]
    fn pass_profit_covers_all_seven_passes_under_both_models() {
        for model in [CoreModel::Generic, CoreModel::PortAccurate] {
            let rows = pass_profit_jobs(&["bzip2"], 3_000, 2, model);
            assert_eq!(rows.len(), PROFIT_PASSES.len());
            for (row, pass) in rows.iter().zip(PROFIT_PASSES) {
                assert_eq!(row.pass, pass);
                assert!(row.profit_pct.is_finite());
            }
        }
    }

    #[test]
    fn run_specs_matches_serial_reference() {
        let w = workloads::by_name("gzip").unwrap();
        let scale = 2_000;
        let store = TraceStore::new();
        let shared = store.traces(&w, scale);
        let direct = w.traces_scaled(scale);
        let specs: Vec<SimSpec> = ConfigKind::ALL
            .into_iter()
            .map(|kind| SimSpec {
                name: w.name.to_string(),
                traces: shared.clone(),
                cfg: SimConfig::new(kind).without_verify(),
            })
            .collect();
        let parallel4 = run_specs(&specs, 4);
        let serial = run_specs(&specs, 1);
        for ((p, s), kind) in parallel4.iter().zip(&serial).zip(ConfigKind::ALL) {
            assert_eq!(p.cycles, s.cycles, "{kind}");
            assert_eq!(p.x86_retired, s.x86_retired, "{kind}");
            assert_eq!(p.coverage.to_bits(), s.coverage.to_bits(), "{kind}");
            let reference =
                run_workload_config(&direct, &w.name, &SimConfig::new(kind).without_verify());
            assert_eq!(p.cycles, reference.cycles, "{kind} vs legacy serial path");
            assert_eq!(
                p.ipc().to_bits(),
                reference.ipc().to_bits(),
                "{kind} IPC bit-identical"
            );
        }
    }
}
