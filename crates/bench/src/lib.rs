//! Shared helpers for the benchmark harnesses.
//!
//! Every figure/table of the paper's evaluation has a `harness = false`
//! bench target in `benches/` that prints the measured result next to the
//! paper's reported value. `cargo bench --workspace` regenerates everything;
//! see `EXPERIMENTS.md` at the repository root for the recorded comparison.
//!
//! The simulated trace length per workload segment is controlled by the
//! `REPLAY_SCALE` environment variable (dynamic x86 instructions; default
//! [`DEFAULT_SCALE`]). Larger scales reduce warm-up effects at the cost of
//! bench time.
//!
//! The experiment drivers these harnesses call fan their
//! `(workload, segment, configuration)` jobs across the parallel engine in
//! `replay-sim`, so bench wall-clock scales with the machine. `REPLAY_JOBS`
//! caps the worker count (`REPLAY_JOBS=1` forces the serial path); the
//! printed numbers are bit-identical either way. Traces are memoized
//! process-wide, so consecutive harnesses at the same `REPLAY_SCALE` reuse
//! the synthesized traces instead of regenerating them.

#![forbid(unsafe_code)]

/// Default per-segment dynamic instruction count for bench runs.
pub const DEFAULT_SCALE: usize = 30_000;

/// The per-segment trace length to simulate, from `REPLAY_SCALE` or the
/// default.
pub fn scale() -> usize {
    std::env::var("REPLAY_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SCALE)
}

/// The paper's Table 3 rows: `(name, uops removed %, loads removed %,
/// IPC increase %)`.
pub const PAPER_TABLE3: [(&str, f64, f64, f64); 14] = [
    ("bzip2", 23.0, 30.0, 28.0),
    ("crafty", 16.0, 11.0, 10.0),
    ("eon", 25.0, 18.0, 31.0),
    ("gzip", 13.0, 10.0, 6.0),
    ("parser", 21.0, 14.0, 8.0),
    ("twolf", 14.0, 15.0, 13.0),
    ("vortex", 24.0, 34.0, 33.0),
    ("access", 22.0, 20.0, 21.0),
    ("dream", 28.0, 30.0, 26.0),
    ("excel", 21.0, 21.0, 13.0),
    ("lotus", 22.0, 26.0, 11.0),
    ("photo", 15.0, 19.0, 30.0),
    ("power", 32.0, 34.0, 6.0),
    ("sound", 22.0, 23.0, 6.0),
];

/// The paper's Figure 6 RPO-over-RP gain annotations, in the same order as
/// [`PAPER_TABLE3`].
pub fn paper_fig6_gain(name: &str) -> Option<f64> {
    PAPER_TABLE3
        .iter()
        .find(|(n, _, _, _)| *n == name)
        .map(|&(_, _, _, g)| g)
}

/// Prints a horizontal rule sized for the harness tables.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rows_cover_all_workloads() {
        let names: Vec<_> = replay_trace::workloads::all()
            .iter()
            .map(|w| w.name)
            .collect();
        for (n, ..) in PAPER_TABLE3 {
            assert!(names.contains(&n), "{n} is a workload");
        }
        assert_eq!(PAPER_TABLE3.len(), names.len());
    }

    #[test]
    fn fig6_lookup() {
        assert_eq!(paper_fig6_gain("bzip2"), Some(28.0));
        assert_eq!(paper_fig6_gain("nonesuch"), None);
    }

    #[test]
    fn scale_defaults() {
        assert!(scale() >= 1_000);
    }
}

/// Prints a Figures 7/8-style cycle breakdown for one suite.
pub fn print_breakdown(suite: replay_trace::Suite, title: &str) {
    use replay_sim::experiment::cycle_breakdown;
    use replay_timing::CycleBin;
    let scale = scale();
    println!("{title} (scale {scale} x86/segment; kilocycles)");
    rule(98);
    print!("{:10} {:4}", "app", "cfg");
    for bin in CycleBin::ALL {
        print!(" {:>9}", bin.label());
    }
    println!(" {:>9}", "total");
    rule(98);
    let mut frame_rp = 0u64;
    let mut frame_rpo = 0u64;
    for row in cycle_breakdown(suite, scale) {
        for (label, bins) in [("RP", row.rp), ("RPO", row.rpo)] {
            print!("{:10} {:4}", row.name, label);
            for bin in CycleBin::ALL {
                print!(" {:9.1}", bins.get(bin) as f64 / 1e3);
            }
            println!(" {:9.1}", bins.total() as f64 / 1e3);
        }
        frame_rp += row.rp.get(CycleBin::Frame);
        frame_rpo += row.rpo.get(CycleBin::Frame);
    }
    rule(98);
    if frame_rp > 0 {
        println!(
            "Frame-cycle reduction RP->RPO: {:.0}% (paper: ~21%)",
            (1.0 - frame_rpo as f64 / frame_rp as f64) * 100.0
        );
    }
}
