//! Design-choice ablations beyond the paper's figures: sweeps over the
//! parameters `DESIGN.md` calls out as load-bearing.
//!
//! * **Optimizer latency** — the paper's earlier work found a pipelined
//!   optimizer with 1K–10K cycles of latency sustains rePLay's throughput
//!   (§4); the sweep shows IPC as a function of cycles-per-uop.
//! * **Frame cache capacity** — optimized frames occupy fewer slots, so
//!   capacity interacts with optimization (§6.1).
//! * **Maximum frame size** — longer frames expose more redundancy but
//!   risk more assertion exposure.
//! * **Bias threshold** — how long a branch must run one way before it is
//!   converted into an assertion.
//! * **Rescheduling** — the §4 position-field extension (off in the
//!   paper's evaluated configuration).

use replay_bench::{rule, scale};
use replay_core::{DatapathConfig, OptConfig};
use replay_sim::{simulate, ConfigKind, SimConfig};
use replay_trace::workloads;

const APPS: [&str; 4] = ["bzip2", "crafty", "vortex", "power"];

fn run(app: &str, n: usize, cfg: &SimConfig) -> f64 {
    let t = workloads::by_name(app).unwrap().segment_trace(0, n);
    simulate(&t, cfg).ipc()
}

fn main() {
    let n = scale().min(20_000);
    println!("Design-choice ablation sweeps (scale {n} x86/segment, RPO configuration)");

    println!("\n[1] optimizer datapath latency (paper model: 10 cycles/uop, depth 3)");
    rule(64);
    print!("{:>16}", "cycles/uop");
    for app in APPS {
        print!(" {:>10}", app);
    }
    println!();
    rule(64);
    for cpu in [1u64, 10, 40, 100, 400] {
        print!("{:>16}", cpu);
        for app in APPS {
            let mut cfg = SimConfig::new(ConfigKind::ReplayOpt).without_verify();
            cfg.datapath = DatapathConfig {
                cycles_per_uop: cpu,
                ..DatapathConfig::default()
            };
            print!(" {:>10.3}", run(app, n, &cfg));
        }
        println!();
    }

    println!("\n[2] frame cache capacity in uops (paper: 16K)");
    rule(64);
    print!("{:>16}", "capacity");
    for app in APPS {
        print!(" {:>10}", app);
    }
    println!();
    rule(64);
    for cap in [1usize * 1024, 4 * 1024, 16 * 1024, 64 * 1024] {
        print!("{:>16}", cap);
        for app in APPS {
            let mut cfg = SimConfig::new(ConfigKind::ReplayOpt).without_verify();
            cfg.timing.frame_cache_uops = cap;
            print!(" {:>10.3}", run(app, n, &cfg));
        }
        println!();
    }

    println!("\n[3] maximum frame size in uops (paper: 256)");
    rule(64);
    print!("{:>16}", "max uops");
    for app in APPS {
        print!(" {:>10}", app);
    }
    println!();
    rule(64);
    for max in [32usize, 64, 128, 256] {
        print!("{:>16}", max);
        for app in APPS {
            let mut cfg = SimConfig::new(ConfigKind::ReplayOpt).without_verify();
            cfg.constructor.max_uops = max;
            print!(" {:>10.3}", run(app, n, &cfg));
        }
        println!();
    }

    println!("\n[4] branch bias threshold (consecutive outcomes; paper-era designs: ~8)");
    rule(64);
    print!("{:>16}", "threshold");
    for app in APPS {
        print!(" {:>10}", app);
    }
    println!();
    rule(64);
    for thr in [2u32, 4, 8, 16, 32] {
        print!("{:>16}", thr);
        for app in APPS {
            let mut cfg = SimConfig::new(ConfigKind::ReplayOpt).without_verify();
            cfg.constructor.bias_threshold = thr;
            print!(" {:>10.3}", run(app, n, &cfg));
        }
        println!();
    }

    println!("\n[5] position-field rescheduling (extension; paper config: off)");
    rule(64);
    print!("{:>16}", "reschedule");
    for app in APPS {
        print!(" {:>10}", app);
    }
    println!();
    rule(64);
    for (label, on) in [("off", false), ("on", true)] {
        print!("{:>16}", label);
        for app in APPS {
            let cfg = SimConfig::new(ConfigKind::ReplayOpt)
                .with_opt(OptConfig {
                    reschedule: on,
                    ..OptConfig::default()
                })
                .without_verify();
            print!(" {:>10.3}", run(app, n, &cfg));
        }
        println!();
    }
    rule(64);
}
