//! Criterion microbenchmarks for the performance-critical components:
//! the optimizer itself (the paper's 1K–10K-cycle hardware budget, §4),
//! the x86 decoder/translator front end, the frame cache, and the branch
//! predictor.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use replay_core::{optimize, AliasProfile, OptConfig, OptFrame};
use replay_frame::{ConstructorConfig, Frame, FrameCache, FrameConstructor, FrameId, RetireEvent};
use replay_timing::Gshare;
use replay_trace::workloads;
use replay_uop::{ArchReg, MachineState, Opcode, Uop};
use replay_x86::{decode, encode, translate, Gpr, Inst, MemOperand};
use std::hint::black_box;

/// Builds a representative 128-uop frame: unrolled call/spill/load-heavy
/// code in the shape the constructor actually produces.
fn representative_frame() -> Frame {
    use ArchReg::*;
    let mut uops = Vec::new();
    let mut x86_addrs = Vec::new();
    let mut addr = 0x1000u32;
    while uops.len() < 120 {
        // PUSH ESI; pointer-chased load pair; redundant reload; POP ESI.
        let before = uops.len();
        uops.push(Uop::store(Esp, -4, Esi).at(addr));
        uops.push(Uop::lea(Esp, Esp, None, 1, -4).at(addr));
        uops.push(Uop::load(Eax, Esp, 4).at(addr + 1));
        uops.push(Uop::alu_imm(Opcode::Add, Eax, Eax, 7).at(addr + 2));
        uops.push(Uop::lea(Ebx, Esi, None, 1, 8).at(addr + 3));
        uops.push(Uop::load(Edx, Ebx, -8).at(addr + 4));
        uops.push(Uop::alu(Opcode::Add, Edx, Edx, Eax).at(addr + 5));
        uops.push(Uop::store(Esp, 0, Edx).at(addr + 6));
        uops.push(Uop::load(Esi, Esp, 0).at(addr + 7));
        uops.push(Uop::lea(Esp, Esp, None, 1, 4).at(addr + 7));
        for _ in before..uops.len() {
            // One synthetic x86 instruction per uop keeps bookkeeping easy.
        }
        for i in 0..8 {
            x86_addrs.push(addr + i);
        }
        addr += 0x10;
    }
    let n = uops.len();
    Frame {
        id: FrameId(0),
        start_addr: 0x1000,
        uops,
        x86_addrs,
        block_starts: vec![0],
        expectations: vec![],
        exit_next: addr,
        orig_uop_count: n,
    }
}

fn bench_optimizer(c: &mut Criterion) {
    let frame = representative_frame();
    let profile = AliasProfile::empty();
    let mut g = c.benchmark_group("optimizer");
    g.throughput(Throughput::Elements(frame.uops.len() as u64));
    g.bench_function("optimize_128uop_frame", |b| {
        b.iter(|| optimize(black_box(&frame), &profile, &OptConfig::default()))
    });
    g.bench_function("remap_only", |b| {
        b.iter(|| {
            let mut f = OptFrame::from_frame(black_box(&frame));
            f.compact();
            f
        })
    });
    g.finish();
}

fn bench_translator(c: &mut Criterion) {
    let insts = vec![
        Inst::PushR { src: Gpr::Ebp },
        Inst::MovRM {
            dst: Gpr::Ecx,
            mem: MemOperand::base_disp(Gpr::Esp, 0xc),
        },
        Inst::AluRR {
            op: replay_x86::AluOp::Or,
            dst: Gpr::Edx,
            src: Gpr::Ebx,
        },
        Inst::Call { target: 0x5000 },
        Inst::Ret,
    ];
    let mut g = c.benchmark_group("frontend");
    g.throughput(Throughput::Elements(insts.len() as u64));
    g.bench_function("translate", |b| {
        b.iter(|| {
            for i in &insts {
                black_box(translate(black_box(i), 0x1000, 0x1005));
            }
        })
    });
    let encoded: Vec<Vec<u8>> = insts.iter().map(|i| encode(i, 0x1000)).collect();
    g.bench_function("decode", |b| {
        b.iter(|| {
            for bytes in &encoded {
                black_box(decode(black_box(bytes), 0x1000).unwrap());
            }
        })
    });
    g.finish();
}

fn bench_frame_cache(c: &mut Criterion) {
    let frame = representative_frame();
    c.bench_function("frame_cache/insert_lookup", |b| {
        let mut cache: FrameCache<Frame> = FrameCache::new(16 * 1024);
        b.iter(|| {
            let mut f = frame.clone();
            f.start_addr = black_box(0x1000);
            cache.insert(f);
            black_box(cache.lookup(0x1000).is_some())
        })
    });
}

fn bench_predictor(c: &mut Criterion) {
    c.bench_function("gshare/predict_update", |b| {
        let mut g = Gshare::new(18);
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            g.predict_and_update(black_box(0x4000 + (i & 63)), i % 3 != 0)
        })
    });
}

fn bench_constructor(c: &mut Criterion) {
    // Feed a real workload's first records through the constructor.
    let trace = workloads::by_name("crafty")
        .unwrap()
        .segment_trace(0, 4_000);
    let flows: Vec<(u32, Vec<Uop>, u32, u32)> = trace
        .records()
        .iter()
        .map(|r| {
            (
                r.addr,
                translate(&r.inst, r.addr, r.fallthrough()),
                r.next_pc,
                r.fallthrough(),
            )
        })
        .collect();
    let mut g = c.benchmark_group("constructor");
    g.throughput(Throughput::Elements(flows.len() as u64));
    g.bench_function("retire_4k_insts", |b| {
        b.iter(|| {
            let mut cons = FrameConstructor::new(ConstructorConfig::default());
            let mut frames = 0u32;
            for (addr, uops, next_pc, fallthrough) in &flows {
                let ev = RetireEvent {
                    addr: *addr,
                    uops,
                    next_pc: *next_pc,
                    fallthrough: *fallthrough,
                };
                if cons.retire(&ev).is_some() {
                    frames += 1;
                }
            }
            black_box(frames)
        })
    });
    g.finish();
}

fn bench_exec_frame(c: &mut Criterion) {
    let frame = representative_frame();
    let (opt, _) = optimize(&frame, &AliasProfile::empty(), &OptConfig::default());
    c.bench_function("exec_frame/optimized", |b| {
        let mut m = MachineState::new();
        m.set_reg(ArchReg::Esp, 0x9000);
        m.set_reg(ArchReg::Esi, 0x5000);
        b.iter(|| replay_core::exec_frame(black_box(&opt), &mut m))
    });
}

criterion_group!(
    benches,
    bench_optimizer,
    bench_translator,
    bench_frame_cache,
    bench_predictor,
    bench_constructor,
    bench_exec_frame
);
criterion_main!(benches);
