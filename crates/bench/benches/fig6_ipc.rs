//! Figure 6: estimated x86 instructions retired per cycle for the ICache,
//! Trace-Cache, rePLay, and rePLay+Optimization configurations, with the
//! percent IPC increase of RPO over RP annotated (the numbers printed above
//! the RPO bars in the paper). Also reports the §6.1 side observations:
//! frame coverage (paper: ~86% SPEC / ~72% desktop) and assert cycles
//! (paper: <3% on average).

use replay_bench::{paper_fig6_gain, rule, scale};
use replay_sim::experiment::ipc_comparison;
use replay_trace::Suite;

fn main() {
    let scale = scale();
    println!("Figure 6 — x86 IPC by configuration (scale {scale} x86/segment)");
    rule(86);
    println!(
        "{:8} {:>6} {:>6} {:>6} {:>6}  {:>8} {:>8}  {:>6} {:>8}",
        "app", "IC", "TC", "RP", "RPO", "gain%", "paper%", "cov", "assert%"
    );
    rule(86);
    let rows = ipc_comparison(scale);
    let mut spec_cov = Vec::new();
    let mut desk_cov = Vec::new();
    let mut gains = Vec::new();
    for r in &rows {
        println!(
            "{:8} {:6.2} {:6.2} {:6.2} {:6.2}  {:+8.1} {:8.0}  {:6.2} {:8.2}",
            r.name,
            r.ipc[0],
            r.ipc[1],
            r.ipc[2],
            r.ipc[3],
            r.rpo_gain_pct,
            paper_fig6_gain(&r.name).unwrap_or(f64::NAN),
            r.coverage,
            r.assert_cycle_frac * 100.0
        );
        match r.suite {
            Suite::SpecInt => spec_cov.push(r.coverage),
            Suite::Desktop => desk_cov.push(r.coverage),
        }
        gains.push(r.rpo_gain_pct);
    }
    rule(86);
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "average RPO gain {:+.1}% (paper: +17%) | coverage SPEC {:.0}% (paper 86%), desktop {:.0}% (paper 72%)",
        avg(&gains),
        avg(&spec_cov) * 100.0,
        avg(&desk_cov) * 100.0
    );
}
