//! Figure 7: per-benchmark execution cycles for the RP and RPO
//! configurations on the SPECint workloads, classified by the fetch event
//! of each cycle (assert / mispred / miss / stall / wait / frame / icache).
//! The paper's headline observation: the optimizer cuts Frame cycles by
//! about 21% on average.

fn main() {
    replay_bench::print_breakdown(
        replay_trace::Suite::SpecInt,
        "Figure 7 — SPECint cycle breakdown",
    );
}
