//! Figure 10: the performance impact of disabling each optimization
//! individually (leave-one-out), on the paper's relative scale where 0 is
//! RP performance and 1 is full RPO performance. Dead-code elimination is
//! always enabled. Paper observations: reassociation (RA) is the gateway
//! optimization — disabling it collapses DreamWeaver and Excel nearly to
//! RP; CSE dominates on bzip2; disabling store forwarding *helps* Excel
//! (speculative unsafe stores alias and abort frames).

use replay_bench::{rule, scale};
use replay_sim::experiment::{ablation, ABLATION_APPS, ABLATION_LABELS};

fn main() {
    let scale = scale();
    println!("Figure 10 — leave-one-out optimization impact (scale {scale} x86/segment)");
    println!("scale: 0.0 = RP (no optimization), 1.0 = RPO (all optimizations)");
    rule(96);
    print!("{:10}", "app");
    for l in ABLATION_LABELS {
        print!(" {:>8}", format!("no {l}"));
    }
    println!(" {:>8} {:>8} {:>8}", "RPO@", "RP ipc", "RPO ipc");
    rule(96);
    for row in ablation(&ABLATION_APPS, scale) {
        print!("{:10}", row.name);
        for v in row.relative {
            print!(" {:8.2}", v);
        }
        println!(
            " {:8.2} {:8.2} {:8.2}",
            row.rpo_relative, row.rp_ipc, row.rpo_ipc
        );
    }
    rule(96);
}
