//! Figure 9: the percent increase in IPC when frames are optimized only
//! within individual basic blocks versus when they are optimized as a unit.
//! The paper's observation: block-level optimization offers some benefit
//! but frame-level optimization yields substantially more (and block-level
//! can even lose to basic rePLay when optimization latency outweighs its
//! benefit, as on SoundForge).

use replay_bench::{rule, scale};
use replay_sim::experiment::scope_comparison;

fn main() {
    let scale = scale();
    println!("Figure 9 — block-scope vs frame-scope optimization (scale {scale} x86/segment)");
    rule(44);
    println!("{:10} {:>10} {:>10}", "app", "block%", "frame%");
    rule(44);
    let mut blocks = Vec::new();
    let mut frames = Vec::new();
    for r in scope_comparison(scale) {
        println!("{:10} {:+10.1} {:+10.1}", r.name, r.block_pct, r.frame_pct);
        blocks.push(r.block_pct);
        frames.push(r.frame_pct);
    }
    rule(44);
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "{:10} {:+10.1} {:+10.1}   (frame-level should dominate)",
        "Average",
        avg(&blocks),
        avg(&frames)
    );
}
