//! Figure 8: per-benchmark execution cycles for the RP and RPO
//! configurations on the desktop workloads, classified by fetch event.

fn main() {
    replay_bench::print_breakdown(
        replay_trace::Suite::Desktop,
        "Figure 8 — desktop cycle breakdown",
    );
}
