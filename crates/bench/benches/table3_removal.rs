//! Table 3: the percentage of dynamic micro-operations and loads removed by
//! the rePLay optimizer, and the resulting increase in IPC (RPO over RP).
//! Paper averages: 21% of uops, 22% of loads, +17% IPC.

use replay_bench::{rule, scale, PAPER_TABLE3};
use replay_sim::experiment::{removal_averages, removal_table};

fn main() {
    let scale = scale();
    println!("Table 3 — micro-operations and loads removed (scale {scale} x86/segment)");
    rule(78);
    println!(
        "{:10} {:>7} {:>7}  {:>7} {:>7}  {:>8} {:>8}",
        "app", "uops%", "paper", "loads%", "paper", "IPC+%", "paper"
    );
    rule(78);
    let rows = removal_table(scale);
    for r in &rows {
        let paper = PAPER_TABLE3
            .iter()
            .find(|(n, ..)| *n == r.name)
            .copied()
            .unwrap_or(("?", f64::NAN, f64::NAN, f64::NAN));
        println!(
            "{:10} {:7.1} {:7.0}  {:7.1} {:7.0}  {:+8.1} {:8.0}",
            r.name,
            r.uops_removed * 100.0,
            paper.1,
            r.loads_removed * 100.0,
            paper.2,
            r.ipc_increase_pct,
            paper.3
        );
    }
    rule(78);
    let (u, l, i) = removal_averages(&rows);
    println!(
        "{:10} {:7.1} {:7.0}  {:7.1} {:7.0}  {:+8.1} {:8.0}",
        "Average",
        u * 100.0,
        21.0,
        l * 100.0,
        22.0,
        i,
        17.0
    );
}
