//! §5.1.1: the x86→uop translator's expansion ratio. The paper reports an
//! average micro-operation-to-x86-instruction ratio of 1.4 for its decode
//! flows, "close to our estimates of what is achieved on real x86
//! implementations".

use replay_bench::{rule, scale};
use replay_trace::workloads;
use replay_x86::Interp;

fn main() {
    let scale = scale().min(20_000);
    println!("uop / x86 expansion ratio (scale {scale} x86/segment; paper average: 1.4)");
    rule(30);
    let mut tx = 0u64;
    let mut tu = 0u64;
    for w in workloads::all() {
        let (program, data) = w.segment_program(0);
        let mut interp = Interp::new(program);
        for (addr, bytes) in &data {
            interp.machine.mem.write_bytes(*addr, bytes);
        }
        interp.run(scale).expect("workload runs");
        let t = interp.translator();
        println!("{:10} {:.3}", w.name, t.ratio());
        tx += t.x86_count();
        tu += t.uop_count();
    }
    rule(30);
    println!("{:10} {:.3}", "Average", tu as f64 / tx as f64);
}
