//! Versioned binary serialization of optimized frames and their stats.
//!
//! The persistent artifact store caches *optimized* frames so a warm run
//! skips the optimizer entirely. That requires a byte-exact, stable
//! encoding of [`OptFrame`] (including bookkeeping the optimizer relies
//! on: live-outs, flags routing, control expectations, block membership)
//! and of the [`OptStats`] the frame's optimization produced — the stats
//! replay the frame's exact metric contribution on a warm start.
//!
//! The decoder is total over arbitrary bytes: truncation, bad tags, and
//! out-of-range slot references all surface as [`WireError`]s (the store
//! evicts and regenerates), never panics. Use counts are not serialized;
//! they are rebuilt from the decoded structure, and
//! [`decode_frame`]/[`encode_frame`] round-trip byte-exactly — the
//! caller-side gate that proves a decoded frame means what its bytes say.

use crate::frame_ir::OptFrame;
use crate::ir::{FlagsSrc, OptUop, Src};
use crate::stats::OptStats;
use replay_frame::{ControlExpectation, FrameId};
use replay_store::{Reader, WireError, Writer};
use replay_uop::{ArchReg, Cond, Opcode};

/// Frame encoding version. Bump on any layout or semantic change; the
/// artifact key includes it, so stale artifacts are simply never found.
/// The byte stream echoes it too, guarding mislabeled files.
pub const FRAME_CODEC_VERSION: u32 = 1;

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_src(w: &mut Writer, src: Src) {
    match src {
        Src::LiveIn(r) => {
            w.put_u8(0);
            w.put_u8(r.index() as u8);
        }
        Src::Slot(s) => {
            w.put_u8(1);
            w.put_u16(s);
        }
    }
}

fn put_opt_src(w: &mut Writer, src: Option<Src>) {
    match src {
        None => w.put_u8(0),
        Some(s) => {
            w.put_u8(1);
            put_src(w, s);
        }
    }
}

fn put_flags_src(w: &mut Writer, fs: FlagsSrc) {
    match fs {
        FlagsSrc::LiveIn => w.put_u8(0),
        FlagsSrc::Slot(s) => {
            w.put_u8(1);
            w.put_u16(s);
        }
    }
}

fn put_uop(w: &mut Writer, u: &OptUop) {
    w.put_u8(u.op as u8);
    put_opt_src(w, u.src_a);
    put_opt_src(w, u.src_b);
    w.put_i32(u.imm);
    w.put_u8(u.scale);
    match u.cc {
        None => w.put_u8(0),
        Some(cc) => {
            w.put_u8(1);
            w.put_u8(cc as u8);
        }
    }
    match u.dst_arch {
        None => w.put_u8(0),
        Some(r) => {
            w.put_u8(1);
            w.put_u8(r.index() as u8);
        }
    }
    let bits = (u.writes_flags as u8) | (u.valid as u8) << 1 | (u.unsafe_store as u8) << 2;
    w.put_u8(bits);
    match u.flags_src {
        None => w.put_u8(0),
        Some(fs) => {
            w.put_u8(1);
            put_flags_src(w, fs);
        }
    }
    w.put_u32(u.target);
    w.put_u32(u.x86_addr);
}

/// Appends a frame's encoding to a writer (for embedding in bundles).
pub fn write_frame(w: &mut Writer, f: &OptFrame) {
    w.put_u32(FRAME_CODEC_VERSION);
    w.put_u64(f.id.0);
    w.put_u32(f.start_addr);
    w.put_u32(f.exit_next);
    w.put_u32(f.orig_uop_count as u32);
    w.put_u32(f.orig_load_count as u32);
    w.put_u32(f.spec_loads_removed);
    put_flags_src(w, f.flags_out);
    w.put_u32(f.x86_addrs.len() as u32);
    for &a in &f.x86_addrs {
        w.put_u32(a);
    }
    w.put_u32(f.slots.len() as u32);
    for u in &f.slots {
        put_uop(w, u);
    }
    for &b in &f.block_of {
        w.put_u16(b);
    }
    w.put_u32(f.live_out.len() as u32);
    for &(r, src) in &f.live_out {
        w.put_u8(r.index() as u8);
        put_src(w, src);
    }
    w.put_u32(f.expectations.len() as u32);
    for e in &f.expectations {
        w.put_u32(e.x86_addr);
        w.put_u32(e.expected_next);
        w.put_u32(e.uop_index as u32);
    }
}

/// Encodes one frame as a standalone byte vector.
pub fn encode_frame(f: &OptFrame) -> Vec<u8> {
    let mut w = Writer::new();
    write_frame(&mut w, f);
    w.into_bytes()
}

/// Appends an [`OptStats`] encoding to a writer.
pub fn write_stats(w: &mut Writer, s: &OptStats) {
    for v in [
        s.uops_before,
        s.uops_after,
        s.loads_before,
        s.loads_after,
        s.speculative_load_removals,
        s.unsafe_stores,
        s.nop_removed,
        s.const_folded,
        s.asserts_removed,
        s.reassociations,
        s.cse_alu,
        s.cse_loads,
        s.store_forwards,
        s.assert_fusions,
        s.dce_removed,
        s.iterations,
        s.rescheduled,
    ] {
        w.put_u64(v);
    }
    for v in s.removed_by_pass {
        w.put_u64(v);
    }
    for v in s.rewrites_by_pass {
        w.put_u64(v);
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

fn get_reg(r: &mut Reader<'_>) -> Result<ArchReg, WireError> {
    let idx = r.get_u8("register")?;
    ArchReg::from_index(idx as usize).ok_or(WireError::BadTag {
        what: "register",
        value: idx as u64,
    })
}

fn get_src(r: &mut Reader<'_>, n_slots: usize) -> Result<Src, WireError> {
    match r.get_u8("source tag")? {
        0 => Ok(Src::LiveIn(get_reg(r)?)),
        1 => {
            let s = r.get_u16("source slot")?;
            if (s as usize) >= n_slots {
                return Err(WireError::BadTag {
                    what: "source slot",
                    value: s as u64,
                });
            }
            Ok(Src::Slot(s))
        }
        t => Err(WireError::BadTag {
            what: "source tag",
            value: t as u64,
        }),
    }
}

fn get_opt_src(r: &mut Reader<'_>, n_slots: usize) -> Result<Option<Src>, WireError> {
    match r.get_u8("option tag")? {
        0 => Ok(None),
        1 => Ok(Some(get_src(r, n_slots)?)),
        t => Err(WireError::BadTag {
            what: "option tag",
            value: t as u64,
        }),
    }
}

fn get_flags_src(r: &mut Reader<'_>, n_slots: usize) -> Result<FlagsSrc, WireError> {
    match r.get_u8("flags source tag")? {
        0 => Ok(FlagsSrc::LiveIn),
        1 => {
            let s = r.get_u16("flags source slot")?;
            if (s as usize) >= n_slots {
                return Err(WireError::BadTag {
                    what: "flags source slot",
                    value: s as u64,
                });
            }
            Ok(FlagsSrc::Slot(s))
        }
        t => Err(WireError::BadTag {
            what: "flags source tag",
            value: t as u64,
        }),
    }
}

fn get_uop(r: &mut Reader<'_>, n_slots: usize) -> Result<OptUop, WireError> {
    let op_tag = r.get_u8("opcode")?;
    let op = *Opcode::ALL.get(op_tag as usize).ok_or(WireError::BadTag {
        what: "opcode",
        value: op_tag as u64,
    })?;
    let src_a = get_opt_src(r, n_slots)?;
    let src_b = get_opt_src(r, n_slots)?;
    let imm = r.get_i32("immediate")?;
    let scale = r.get_u8("scale")?;
    let cc = match r.get_u8("condition tag")? {
        0 => None,
        1 => {
            let c = r.get_u8("condition")?;
            Some(*Cond::ALL.get(c as usize).ok_or(WireError::BadTag {
                what: "condition",
                value: c as u64,
            })?)
        }
        t => {
            return Err(WireError::BadTag {
                what: "condition tag",
                value: t as u64,
            })
        }
    };
    let dst_arch = match r.get_u8("destination tag")? {
        0 => None,
        1 => Some(get_reg(r)?),
        t => {
            return Err(WireError::BadTag {
                what: "destination tag",
                value: t as u64,
            })
        }
    };
    let bits = r.get_u8("uop flags")?;
    if bits & !0b111 != 0 {
        return Err(WireError::BadTag {
            what: "uop flags",
            value: bits as u64,
        });
    }
    let flags_src = match r.get_u8("flags option tag")? {
        0 => None,
        1 => Some(get_flags_src(r, n_slots)?),
        t => {
            return Err(WireError::BadTag {
                what: "flags option tag",
                value: t as u64,
            })
        }
    };
    let target = r.get_u32("target")?;
    let x86_addr = r.get_u32("x86 address")?;
    Ok(OptUop {
        op,
        src_a,
        src_b,
        imm,
        scale,
        cc,
        dst_arch,
        writes_flags: bits & 1 != 0,
        flags_src,
        target,
        x86_addr,
        valid: bits & 2 != 0,
        unsafe_store: bits & 4 != 0,
    })
}

/// Reads one frame from a reader (the inverse of [`write_frame`]).
pub fn read_frame(r: &mut Reader<'_>) -> Result<OptFrame, WireError> {
    let version = r.get_u32("frame codec version")?;
    if version != FRAME_CODEC_VERSION {
        return Err(WireError::BadTag {
            what: "frame codec version",
            value: version as u64,
        });
    }
    let id = FrameId(r.get_u64("frame id")?);
    let start_addr = r.get_u32("start address")?;
    let exit_next = r.get_u32("exit address")?;
    let orig_uop_count = r.get_u32("original uop count")? as usize;
    let orig_load_count = r.get_u32("original load count")? as usize;
    let spec_loads_removed = r.get_u32("speculative load count")?;
    // flags_out may reference a slot; defer the range check until the
    // slot count is known.
    let flags_out = get_flags_src(r, usize::MAX)?;

    let n_addrs = r.get_len("x86 addresses", 4)?;
    let mut x86_addrs = Vec::with_capacity(n_addrs);
    for _ in 0..n_addrs {
        x86_addrs.push(r.get_u32("x86 address")?);
    }

    let n_slots = r.get_len("slots", 2)?;
    if n_slots > crate::ir::Slot::MAX as usize {
        return Err(WireError::BadLength {
            what: "slots",
            len: n_slots as u64,
        });
    }
    if let FlagsSrc::Slot(s) = flags_out {
        if (s as usize) >= n_slots {
            return Err(WireError::BadTag {
                what: "flags-out slot",
                value: s as u64,
            });
        }
    }
    let mut slots = Vec::with_capacity(n_slots);
    for _ in 0..n_slots {
        slots.push(get_uop(r, n_slots)?);
    }
    let mut block_of = Vec::with_capacity(n_slots);
    for _ in 0..n_slots {
        block_of.push(r.get_u16("block index")?);
    }

    let n_live = r.get_len("live-outs", 3)?;
    let mut live_out = Vec::with_capacity(n_live);
    for _ in 0..n_live {
        let reg = get_reg(r)?;
        let src = get_src(r, n_slots)?;
        live_out.push((reg, src));
    }

    let n_exp = r.get_len("expectations", 12)?;
    let mut expectations = Vec::with_capacity(n_exp);
    for _ in 0..n_exp {
        let x86_addr = r.get_u32("expectation address")?;
        let expected_next = r.get_u32("expected next")?;
        let uop_index = r.get_u32("expectation uop index")? as usize;
        if uop_index >= n_slots {
            return Err(WireError::BadTag {
                what: "expectation uop index",
                value: uop_index as u64,
            });
        }
        expectations.push(ControlExpectation {
            x86_addr,
            expected_next,
            uop_index,
        });
    }

    let mut f = OptFrame {
        id,
        start_addr,
        exit_next,
        x86_addrs,
        orig_uop_count,
        orig_load_count,
        slots,
        block_of,
        value_uses: Vec::new(),
        flags_uses: Vec::new(),
        live_out,
        flags_out,
        expectations,
        spec_loads_removed,
    };
    f.rebuild_use_counts();
    Ok(f)
}

/// Decodes a standalone frame encoding, requiring full consumption.
pub fn decode_frame(bytes: &[u8]) -> Result<OptFrame, WireError> {
    let mut r = Reader::new(bytes);
    let f = read_frame(&mut r)?;
    r.finish()?;
    Ok(f)
}

/// Reads an [`OptStats`] (the inverse of [`write_stats`]).
pub fn read_stats(r: &mut Reader<'_>) -> Result<OptStats, WireError> {
    let mut scalars = [0u64; 17];
    for v in &mut scalars {
        *v = r.get_u64("stats scalar")?;
    }
    let mut removed_by_pass = [0u64; 7];
    for v in &mut removed_by_pass {
        *v = r.get_u64("stats removed-by-pass")?;
    }
    let mut rewrites_by_pass = [0u64; 7];
    for v in &mut rewrites_by_pass {
        *v = r.get_u64("stats rewrites-by-pass")?;
    }
    let [uops_before, uops_after, loads_before, loads_after, speculative_load_removals, unsafe_stores, nop_removed, const_folded, asserts_removed, reassociations, cse_alu, cse_loads, store_forwards, assert_fusions, dce_removed, iterations, rescheduled] =
        scalars;
    Ok(OptStats {
        uops_before,
        uops_after,
        loads_before,
        loads_after,
        speculative_load_removals,
        unsafe_stores,
        nop_removed,
        const_folded,
        asserts_removed,
        reassociations,
        cse_alu,
        cse_loads,
        store_forwards,
        assert_fusions,
        dce_removed,
        iterations,
        rescheduled,
        removed_by_pass,
        rewrites_by_pass,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{optimize, AliasProfile, OptConfig};
    use replay_frame::Frame;
    use replay_uop::{ArchReg, Uop};

    fn sample_frame() -> Frame {
        Frame {
            id: FrameId(42),
            start_addr: 0x1000,
            uops: vec![
                Uop::store(ArchReg::Esp, -4, ArchReg::Ebp),
                Uop::lea(ArchReg::Esp, ArchReg::Esp, None, 1, -4),
                Uop::store(ArchReg::Esp, -4, ArchReg::Ebx),
                Uop::lea(ArchReg::Esp, ArchReg::Esp, None, 1, -4),
                Uop::load(ArchReg::Ecx, ArchReg::Esp, 0xc),
                Uop::load(ArchReg::Ebx, ArchReg::Esp, 0x10),
                Uop::mov_imm(ArchReg::Eax, 0),
                Uop::nop(),
            ],
            x86_addrs: vec![0x1000],
            block_starts: vec![0],
            expectations: vec![],
            exit_next: 0x2000,
            orig_uop_count: 8,
        }
    }

    #[test]
    fn optimized_frame_round_trips_byte_exactly() {
        let frame = sample_frame();
        let (opt, _) = optimize(&frame, &AliasProfile::empty(), &OptConfig::default());
        let bytes = encode_frame(&opt);
        let decoded = decode_frame(&bytes).expect("decodes");
        // Byte-exact re-encode is the round-trip gate the store relies on.
        assert_eq!(encode_frame(&decoded), bytes);
        // Semantically identical too.
        assert_eq!(decoded.start_addr, opt.start_addr);
        assert_eq!(decoded.uop_count(), opt.uop_count());
        assert_eq!(decoded.load_count(), opt.load_count());
        assert_eq!(decoded.listing(), opt.listing());
        decoded.validate().expect("decoded frame is consistent");
    }

    #[test]
    fn unoptimized_frame_round_trips() {
        let frame = sample_frame();
        let raw = OptFrame::from_frame(&frame);
        let bytes = encode_frame(&raw);
        let decoded = decode_frame(&bytes).unwrap();
        assert_eq!(encode_frame(&decoded), bytes);
        assert_eq!(decoded.listing(), raw.listing());
    }

    #[test]
    fn stats_round_trip() {
        let mut s = OptStats {
            uops_before: 100,
            uops_after: 60,
            loads_before: 12,
            loads_after: 6,
            store_forwards: 3,
            iterations: 2,
            ..OptStats::default()
        };
        s.removed_by_pass = [1, 2, 3, 4, 5, 6, 19];
        s.rewrites_by_pass = [7, 0, 1, 0, 2, 9, 40];
        let mut w = Writer::new();
        write_stats(&mut w, &s);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = read_stats(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn truncation_never_panics() {
        let frame = sample_frame();
        let (opt, _) = optimize(&frame, &AliasProfile::empty(), &OptConfig::default());
        let bytes = encode_frame(&opt);
        for cut in 0..bytes.len() {
            assert!(
                decode_frame(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must fail"
            );
        }
    }

    #[test]
    fn out_of_range_slot_reference_rejected() {
        let frame = sample_frame();
        let (opt, _) = optimize(&frame, &AliasProfile::empty(), &OptConfig::default());
        let good = encode_frame(&opt);
        // Corrupt every byte in turn: each mutation must either decode to
        // a frame that re-encodes to exactly the mutated bytes (a benign
        // field change) or fail cleanly — never panic.
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] = bad[i].wrapping_add(1);
            if let Ok(f) = decode_frame(&bad) {
                assert_eq!(encode_frame(&f), bad, "byte {i}: lossy reinterpretation");
            }
        }
    }

    #[test]
    fn version_skew_rejected() {
        let frame = sample_frame();
        let raw = OptFrame::from_frame(&frame);
        let mut bytes = encode_frame(&raw);
        bytes[0..4].copy_from_slice(&(FRAME_CODEC_VERSION + 1).to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes),
            Err(WireError::BadTag {
                what: "frame codec version",
                ..
            })
        ));
    }
}
