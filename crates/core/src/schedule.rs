//! Position-field rescheduling (the §4 Cleanup Logic extension).
//!
//! The paper's optimizer datapath encodes a *position* field with every
//! micro-operation: "the optimization algorithms can use the position field
//! to adjust the frame's schedule. The Cleanup Logic can use associative
//! lookups to read the frame out of the Optimization Buffer in the
//! specified order." The evaluated configuration leaves frames in buffer
//! order; this module implements the adjustment as an optional extension.
//!
//! The scheduler performs critical-path list scheduling over the frame's
//! dataflow graph: uops with the longest downstream dependence chains are
//! positioned earliest, so the 8-wide fetch delivers the critical path to
//! the scheduler as soon as possible. Constraints honored:
//!
//! * memory operations keep their original relative order (§4: the
//!   optimizer must preserve memory ordering);
//! * control uops (branches, assertions) keep their original relative
//!   order, and the frame's final exit stays last;
//! * data dependencies are respected by construction (a uop is ready only
//!   once its producers are placed).
//!
//! Because frames are in renamed form, any data-respecting order is
//! architecturally equivalent — "the instructions of a frame are explicitly
//! in renamed form and can be arbitrarily reordered" (§4) — which the
//! soundness property tests verify.

use crate::ir::{FlagsSrc, Slot, Src};
use crate::OptFrame;

/// Computes a new schedule for a *compacted* frame and returns the slot
/// permutation (new position → old slot). Returns `None` when the frame is
/// already optimally ordered (the permutation is the identity).
fn compute_order(f: &OptFrame) -> Option<Vec<Slot>> {
    let n = f.len();
    if n < 2 {
        return None;
    }

    // Downstream criticality: longest path (in uops) from each slot to any
    // consumer, computed backwards.
    let mut height = vec![1u32; n];
    for i in (0..n).rev() {
        let u = f.slot(i as Slot);
        for src in [u.src_a, u.src_b].into_iter().flatten() {
            if let Src::Slot(p) = src {
                let p = p as usize;
                height[p] = height[p].max(height[i] + 1);
            }
        }
        if let Some(FlagsSrc::Slot(p)) = u.flags_src {
            let p = p as usize;
            height[p] = height[p].max(height[i] + 1);
        }
    }

    // Dependence counts (value + flags producers per uop).
    let mut pending = vec![0u32; n];
    let mut consumers: Vec<Vec<Slot>> = vec![Vec::new(); n];
    for (i, pend) in pending.iter_mut().enumerate() {
        let u = f.slot(i as Slot);
        for src in [u.src_a, u.src_b].into_iter().flatten() {
            if let Src::Slot(p) = src {
                *pend += 1;
                consumers[p as usize].push(i as Slot);
            }
        }
        if let Some(FlagsSrc::Slot(p)) = u.flags_src {
            *pend += 1;
            consumers[p as usize].push(i as Slot);
        }
    }

    // Ordering queues for the in-order classes.
    let is_mem = |i: usize| {
        let u = f.slot(i as Slot);
        u.is_load() || u.is_store()
    };
    let is_ctrl = |i: usize| {
        let u = f.slot(i as Slot);
        u.op.is_branch() || u.op.is_assert()
    };
    let mem_order: Vec<usize> = (0..n).filter(|&i| is_mem(i)).collect();
    let ctrl_order: Vec<usize> = (0..n).filter(|&i| is_ctrl(i)).collect();
    let mut next_mem = 0usize;
    let mut next_ctrl = 0usize;

    let mut placed = vec![false; n];
    let mut order: Vec<Slot> = Vec::with_capacity(n);
    let mut ready: Vec<usize> = (0..n).filter(|&i| pending[i] == 0).collect();

    while order.len() < n {
        // A uop is schedulable if its data inputs are placed AND, for
        // ordered classes, it is the next of its class.
        let pick = ready
            .iter()
            .copied()
            .filter(|&i| {
                (!is_mem(i) || mem_order.get(next_mem) == Some(&i))
                    && (!is_ctrl(i) || ctrl_order.get(next_ctrl) == Some(&i))
            })
            // Highest criticality first; original order breaks ties.
            .max_by_key(|&i| (height[i], std::cmp::Reverse(i)));

        let Some(i) = pick else {
            // The ordered-class heads are data-blocked; fall back to the
            // original order to guarantee progress (pick the smallest
            // ready slot).
            let &i = ready
                .iter()
                .min()
                .expect("acyclic dataflow has a ready uop");
            place(
                i,
                &mut ready,
                &mut placed,
                &mut order,
                &consumers,
                &mut pending,
            );
            if is_mem(i) {
                next_mem += 1;
            }
            if is_ctrl(i) {
                next_ctrl += 1;
            }
            continue;
        };
        place(
            i,
            &mut ready,
            &mut placed,
            &mut order,
            &consumers,
            &mut pending,
        );
        if is_mem(i) {
            next_mem += 1;
        }
        if is_ctrl(i) {
            next_ctrl += 1;
        }
    }

    let identity = order.iter().enumerate().all(|(pos, &s)| pos == s as usize);
    if identity {
        None
    } else {
        Some(order)
    }
}

fn place(
    i: usize,
    ready: &mut Vec<usize>,
    placed: &mut [bool],
    order: &mut Vec<Slot>,
    consumers: &[Vec<Slot>],
    pending: &mut [u32],
) {
    ready.retain(|&r| r != i);
    placed[i] = true;
    order.push(i as Slot);
    for &c in &consumers[i] {
        let c = c as usize;
        pending[c] -= 1;
        if pending[c] == 0 && !placed[c] {
            ready.push(c);
        }
    }
}

/// Reschedules a compacted frame by criticality (see the module docs).
/// Returns the number of uops that moved.
///
/// # Panics
///
/// Panics if the frame contains invalidated slots (compact first).
pub fn reschedule(f: &mut OptFrame) -> u64 {
    assert!(
        f.iter().all(|(_, u)| u.valid),
        "reschedule requires a compacted frame"
    );
    let Some(order) = compute_order(f) else {
        return 0;
    };
    let moved = order
        .iter()
        .enumerate()
        .filter(|(pos, &s)| *pos != s as usize)
        .count() as u64;
    f.permute(&order);
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exec_frame, FrameOutcome};
    use replay_frame::{Frame, FrameId};
    use replay_uop::{ArchReg, MachineState, Opcode, Uop};

    fn mk(uops: Vec<Uop>) -> OptFrame {
        let n = uops.len();
        let frame = Frame {
            id: FrameId(0),
            start_addr: 0x1000,
            x86_addrs: vec![0x1000],
            block_starts: vec![0],
            expectations: vec![],
            exit_next: 0x2000,
            orig_uop_count: n,
            uops,
        };
        let mut f = OptFrame::from_frame(&frame);
        f.compact();
        f
    }

    #[test]
    fn critical_chain_moves_forward() {
        use ArchReg::*;
        // A long dependent chain placed late; independent fillers early.
        let f0 = mk(vec![
            Uop::mov_imm(Et0, 1),                   // filler
            Uop::mov_imm(Et1, 2),                   // filler
            Uop::alu_imm(Opcode::Add, Eax, Esi, 1), // chain head
            Uop::alu_imm(Opcode::Add, Eax, Eax, 2),
            Uop::alu_imm(Opcode::Add, Eax, Eax, 3),
            Uop::alu_imm(Opcode::Add, Eax, Eax, 4),
        ]);
        let mut f = f0.clone();
        let moved = reschedule(&mut f);
        assert!(moved > 0, "fillers yield to the chain");
        // The chain head now comes first.
        assert_eq!(f.slot(0).dst_arch, Some(Eax));
    }

    #[test]
    fn memory_order_is_preserved() {
        use ArchReg::*;
        let f0 = mk(vec![
            Uop::store(Esi, 0, Eax),
            Uop::mov_imm(Et0, 1),
            Uop::load(Ebx, Esi, 0),
            Uop::store(Esi, 4, Ebx),
        ]);
        let mut f = f0.clone();
        reschedule(&mut f);
        let mems: Vec<_> = f
            .iter_valid()
            .filter(|(_, u)| u.is_load() || u.is_store())
            .map(|(_, u)| (u.is_store(), u.imm))
            .collect();
        assert_eq!(
            mems,
            vec![(true, 0), (false, 0), (true, 4)],
            "memory ops keep program order"
        );
    }

    #[test]
    fn rescheduled_frame_is_equivalent() {
        use ArchReg::*;
        let f0 = mk(vec![
            Uop::mov_imm(Et0, 10),
            Uop::store(Esi, 0, Et0),
            Uop::alu_imm(Opcode::Add, Eax, Esi, 4),
            Uop::load(Ebx, Esi, 0),
            Uop::alu(Opcode::Add, Ecx, Ebx, Eax),
            Uop::alu_imm(Opcode::Shl, Ecx, Ecx, 2),
        ]);
        let mut scheduled = f0.clone();
        reschedule(&mut scheduled);

        let mut m1 = MachineState::new();
        m1.set_reg(Esi, 0x5000);
        let mut m2 = m1.clone();
        let o1 = exec_frame(&f0, &mut m1);
        let o2 = exec_frame(&scheduled, &mut m2);
        assert!(matches!(o1, FrameOutcome::Completed { .. }));
        assert!(matches!(o2, FrameOutcome::Completed { .. }));
        for r in ArchReg::GPRS {
            assert_eq!(m1.reg(r), m2.reg(r), "{r}");
        }
        assert_eq!(m1.load32(0x5000), m2.load32(0x5000));
    }

    #[test]
    fn identity_schedule_reports_zero() {
        use ArchReg::*;
        // A pure chain is already in the only legal order.
        let mut f = mk(vec![
            Uop::alu_imm(Opcode::Add, Eax, Esi, 1),
            Uop::alu_imm(Opcode::Add, Eax, Eax, 2),
        ]);
        assert_eq!(reschedule(&mut f), 0);
    }

    #[test]
    fn asserts_stay_in_order_and_before_dependents() {
        use ArchReg::*;
        let f0 = mk(vec![
            Uop::cmp_imm(Eax, 0),
            Uop::assert_cc(replay_uop::Cond::Eq),
            Uop::cmp_imm(Ebx, 1),
            Uop::assert_cc(replay_uop::Cond::Ne),
        ]);
        let mut f = f0.clone();
        reschedule(&mut f);
        let ccs: Vec<_> = f
            .iter_valid()
            .filter(|(_, u)| u.op.is_assert())
            .map(|(_, u)| u.cc.unwrap())
            .collect();
        assert_eq!(ccs, vec![replay_uop::Cond::Eq, replay_uop::Cond::Ne]);
    }
}
