//! Optimization statistics.

use std::ops::AddAssign;

/// Per-frame (or accumulated) optimization statistics — the raw material of
/// the paper's Table 3.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Uops in the frame before optimization.
    pub uops_before: u64,
    /// Uops remaining after optimization.
    pub uops_after: u64,
    /// Loads before optimization.
    pub loads_before: u64,
    /// Loads remaining.
    pub loads_after: u64,
    /// Loads removed speculatively (across may-alias stores).
    pub speculative_load_removals: u64,
    /// Stores marked unsafe by speculative memory optimization.
    pub unsafe_stores: u64,
    /// Uops removed by NOP / unconditional-jump removal.
    pub nop_removed: u64,
    /// Uops folded to constants by constant propagation.
    pub const_folded: u64,
    /// Assertions proven redundant and deleted by constant propagation.
    pub asserts_removed: u64,
    /// Operands rewritten by reassociation (including copy propagation).
    pub reassociations: u64,
    /// Value redundancies collapsed by CSE (ALU).
    pub cse_alu: u64,
    /// Redundant loads eliminated by CSE (memory).
    pub cse_loads: u64,
    /// Loads eliminated by store forwarding.
    pub store_forwards: u64,
    /// Compare+assert fusions performed.
    pub assert_fusions: u64,
    /// Uops deleted by dead-code elimination.
    pub dce_removed: u64,
    /// Pass-pipeline iterations executed.
    pub iterations: u64,
    /// Uops repositioned by the optional rescheduling pass.
    pub rescheduled: u64,
    /// Uops whose slots each pass invalidated, indexed in `PassId::ALL`
    /// order (NOP, CP, RA, ASST, MEM, CSE, DCE). Measured as the drop in
    /// the frame's valid-uop count across each pass invocation, so the
    /// entries telescope exactly: their sum equals `removed_uops()`.
    pub removed_by_pass: [u64; 7],
    /// Rewrites each pass reported across all iterations, indexed in
    /// `PassId::ALL` order. This is the per-pass `opt.pass.*.rewrites`
    /// observability counter in aggregate form, carried here so a frame
    /// optimized once can replay its exact metric contribution later
    /// (e.g. on a warm start from the persistent artifact store).
    pub rewrites_by_pass: [u64; 7],
}

impl OptStats {
    /// Uops removed in total.
    pub fn removed_uops(&self) -> u64 {
        self.uops_before.saturating_sub(self.uops_after)
    }

    /// Loads removed in total.
    pub fn removed_loads(&self) -> u64 {
        self.loads_before.saturating_sub(self.loads_after)
    }

    /// Fraction of uops removed, in `[0, 1]`.
    pub fn uop_removal_fraction(&self) -> f64 {
        if self.uops_before == 0 {
            0.0
        } else {
            self.removed_uops() as f64 / self.uops_before as f64
        }
    }

    /// Fraction of loads removed, in `[0, 1]`.
    pub fn load_removal_fraction(&self) -> f64 {
        if self.loads_before == 0 {
            0.0
        } else {
            self.removed_loads() as f64 / self.loads_before as f64
        }
    }
}

impl AddAssign for OptStats {
    fn add_assign(&mut self, o: OptStats) {
        self.uops_before += o.uops_before;
        self.uops_after += o.uops_after;
        self.loads_before += o.loads_before;
        self.loads_after += o.loads_after;
        self.speculative_load_removals += o.speculative_load_removals;
        self.unsafe_stores += o.unsafe_stores;
        self.nop_removed += o.nop_removed;
        self.const_folded += o.const_folded;
        self.asserts_removed += o.asserts_removed;
        self.reassociations += o.reassociations;
        self.cse_alu += o.cse_alu;
        self.cse_loads += o.cse_loads;
        self.store_forwards += o.store_forwards;
        self.assert_fusions += o.assert_fusions;
        self.dce_removed += o.dce_removed;
        self.iterations += o.iterations;
        self.rescheduled += o.rescheduled;
        for (a, b) in self.removed_by_pass.iter_mut().zip(o.removed_by_pass) {
            *a += b;
        }
        for (a, b) in self.rewrites_by_pass.iter_mut().zip(o.rewrites_by_pass) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions() {
        let s = OptStats {
            uops_before: 100,
            uops_after: 79,
            loads_before: 50,
            loads_after: 39,
            ..OptStats::default()
        };
        assert_eq!(s.removed_uops(), 21);
        assert_eq!(s.removed_loads(), 11);
        assert!((s.uop_removal_fraction() - 0.21).abs() < 1e-12);
        assert!((s.load_removal_fraction() - 0.22).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators() {
        let s = OptStats::default();
        assert_eq!(s.uop_removal_fraction(), 0.0);
        assert_eq!(s.load_removal_fraction(), 0.0);
    }

    #[test]
    fn accumulation() {
        let mut a = OptStats {
            uops_before: 10,
            uops_after: 8,
            store_forwards: 1,
            ..OptStats::default()
        };
        let b = OptStats {
            uops_before: 20,
            uops_after: 15,
            store_forwards: 2,
            ..OptStats::default()
        };
        a += b;
        assert_eq!(a.uops_before, 30);
        assert_eq!(a.removed_uops(), 7);
        assert_eq!(a.store_forwards, 3);
    }
}
