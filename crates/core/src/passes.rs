//! The seven rePLay optimizations (§3 of the paper).
//!
//! Every pass operates on the renamed [`OptFrame`] representation and
//! maintains its use counts through the frame's mutation API. Passes are
//! deliberately simple — the atomicity of frames, the single control path,
//! and the unique-destination renaming (§4) remove all the hard cases of
//! classical compiler optimization:
//!
//! * no φ-functions or merge points (single path),
//! * no write-after-write or write-after-read hazards (unique
//!   destinations),
//! * no partial liveness (architectural state matters only at the frame
//!   boundary).
//!
//! Dead-code elimination is the collector for all other passes and is
//! always enabled (§6.4).

use crate::alias::AliasProfile;
use crate::ir::{FlagsSrc, Operand, OptUop, Slot, Src};
use crate::pipeline::OptScope;
use crate::OptFrame;
use replay_uop::{eval_alu, Opcode};
use std::collections::HashMap;

/// True when a consumer at `consumer` may observe/rewire against a producer
/// at `producer` under the given optimization scope.
///
/// In [`OptScope::Block`] mode each basic block is optimized individually
/// (§6.3): transformations never reach across a block boundary.
fn visible(f: &OptFrame, producer: Slot, consumer: Slot, scope: OptScope) -> bool {
    match scope {
        // Control enters only at the top, so earlier blocks have provably
        // executed: backward visibility is unrestricted.
        OptScope::Frame | OptScope::InterBlock => true,
        OptScope::Block => f.block_of(producer) == f.block_of(consumer),
    }
}

/// If `u` is a pure register copy, the source it copies. `Mov`, and `Lea`
/// with no index and zero displacement, qualify.
fn copy_source(u: &OptUop) -> Option<Src> {
    match u.op {
        Opcode::Mov => u.src_a,
        Opcode::Lea if u.src_b.is_none() && u.imm == 0 => u.src_a,
        _ => None,
    }
}

/// If `u` computes `X + d` for a single source `X` and constant `d`, returns
/// `(X, d)`. Matches `Lea base,disp`, add-immediate, and subtract-immediate.
fn add_chain_link(u: &OptUop) -> Option<(Src, i32)> {
    if u.src_b.is_some() {
        return None;
    }
    let x = u.src_a?;
    match u.op {
        Opcode::Lea => Some((x, u.imm)),
        Opcode::Add => Some((x, u.imm)),
        Opcode::Sub => Some((x, u.imm.wrapping_neg())),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// NOP removal
// ---------------------------------------------------------------------

/// Removes `NOP` uops and unconditional direct jumps (which embody no
/// control decision inside an atomic frame). Returns the number of uops
/// removed.
pub fn nop_removal(f: &mut OptFrame) -> u64 {
    let mut removed = 0;
    for i in 0..f.len() as Slot {
        let u = f.slot(i);
        if u.valid && matches!(u.op, Opcode::Nop | Opcode::Jmp) {
            f.invalidate(i);
            removed += 1;
        }
    }
    removed
}

// ---------------------------------------------------------------------
// Constant propagation
// ---------------------------------------------------------------------

/// Result counters of one constant-propagation run.
#[derive(Debug, Default, Clone, Copy)]
pub struct ConstPropResult {
    /// Uops replaced by `MovImm`.
    pub folded: u64,
    /// Constant operands folded into immediate forms.
    pub operands_folded: u64,
    /// Assertions proven always-true and deleted.
    pub asserts_removed: u64,
}

/// Propagates constants forward through the frame.
///
/// * a uop whose inputs are all known constants is replaced by `MovImm`
///   (when its flags are not consumed);
/// * a constant second operand is folded into the immediate form, and a
///   constant load index into the displacement;
/// * a fused target assertion (`AssertCmp`) whose operands are constant and
///   whose condition provably holds is deleted outright — this is how the
///   return jump of an inlined call disappears (§3.3).
pub fn const_prop(f: &mut OptFrame, scope: OptScope) -> ConstPropResult {
    let mut res = ConstPropResult::default();
    let mut consts: Vec<Option<u32>> = vec![None; f.len()];

    let read_const = |f: &OptFrame,
                      consts: &[Option<u32>],
                      src: Option<Src>,
                      at: Slot,
                      scope: OptScope|
     -> Option<u32> {
        match src? {
            Src::Slot(m) if visible(f, m, at, scope) => consts[m as usize],
            _ => None,
        }
    };

    for i in 0..f.len() as Slot {
        if !f.slot(i).valid {
            continue;
        }
        let op = f.slot(i).op;

        // Fold a constant base into an absolute address: exposes provable
        // memory disjointness to the memory optimizer.
        if matches!(op, Opcode::Load | Opcode::Store | Opcode::Lea) && f.slot(i).src_a.is_some() {
            if let Some(k) = read_const(f, &consts, f.slot(i).src_a, i, scope) {
                let disp = f.slot(i).imm.wrapping_add(k as i32);
                f.rewrite_operand_imm(i, Operand::A, None, disp);
                res.operands_folded += 1;
            }
        }

        // Fold a constant index into a load/lea displacement.
        if matches!(op, Opcode::Load | Opcode::Lea) && f.slot(i).src_b.is_some() {
            if let Some(k) = read_const(f, &consts, f.slot(i).src_b, i, scope) {
                let u = f.slot(i);
                let disp = u.imm.wrapping_add((k as i32).wrapping_mul(u.scale as i32));
                f.rewrite_operand_imm(i, Operand::B, None, disp);
                res.operands_folded += 1;
            }
        }

        // Fold a constant second source of an ALU op into immediate form.
        if op.is_alu() && op != Opcode::MovImm && f.slot(i).src_b.is_some() && op != Opcode::Lea {
            if let Some(k) = read_const(f, &consts, f.slot(i).src_b, i, scope) {
                f.rewrite_operand_imm(i, Operand::B, None, k as i32);
                res.operands_folded += 1;
            }
        }

        match op {
            Opcode::MovImm => consts[i as usize] = Some(f.slot(i).imm as u32),
            Opcode::AssertCmp | Opcode::AssertTest => {
                let a = read_const(f, &consts, f.slot(i).src_a, i, scope);
                let b = match f.slot(i).src_b {
                    Some(src) => read_const(f, &consts, Some(src), i, scope),
                    None => Some(f.slot(i).imm as u32),
                };
                if let (Some(a), Some(b)) = (a, b) {
                    let alu = if op == Opcode::AssertCmp {
                        Opcode::Cmp
                    } else {
                        Opcode::Test
                    };
                    let flags = eval_alu(alu, a, b).expect("cmp/test never fault").flags;
                    let cc = f.slot(i).cc.expect("assert carries cc");
                    if cc.holds(flags) {
                        // The assertion can never fire: delete it and its
                        // control expectation.
                        f.remove_expectation_at(i);
                        f.invalidate(i);
                        res.asserts_removed += 1;
                    }
                }
            }
            _ if op.is_alu() && !op.is_flags_only() => {
                let a = read_const(f, &consts, f.slot(i).src_a, i, scope);
                let b = match f.slot(i).src_b {
                    Some(src) => read_const(f, &consts, Some(src), i, scope),
                    None => Some(f.slot(i).imm as u32),
                };
                let value = match (op, a, b) {
                    (Opcode::Lea, Some(a), _) if f.slot(i).src_b.is_none() => {
                        Some(a.wrapping_add(f.slot(i).imm as u32))
                    }
                    // A Lea whose base was folded away entirely is a pure
                    // constant (its displacement).
                    (Opcode::Lea, None, _)
                        if f.slot(i).src_a.is_none() && f.slot(i).src_b.is_none() =>
                    {
                        Some(f.slot(i).imm as u32)
                    }
                    (Opcode::MovImm, _, _) => unreachable!("handled above"),
                    (_, Some(a), Some(b)) => eval_alu(op, a, b).ok().map(|r| r.value),
                    _ => None,
                };
                if let Some(v) = value {
                    consts[i as usize] = Some(v);
                    let flags_needed = f.slot(i).writes_flags && f.flags_uses(i) > 0;
                    if !flags_needed && f.slot(i).op != Opcode::MovImm {
                        f.replace_with_const(i, v as i32);
                        res.folded += 1;
                    }
                }
            }
            _ => {}
        }
    }
    res
}

// ---------------------------------------------------------------------
// Reassociation (including copy propagation)
// ---------------------------------------------------------------------

/// Reassociates add-immediate chains and propagates copies.
///
/// The canonical case is the stack pointer (§3.1): after `PUSH EBP` the
/// next `PUSH`'s store reads `ESP₁ = ESP₀ - 4`; reassociation rewrites it
/// to read `ESP₀` with the `-4` folded into its displacement. Once all
/// consumers have been rewritten, the intermediate update is dead.
///
/// Folding is suppressed when the rewritten uop's *flags* are consumed: the
/// value is unchanged but carry/overflow of a re-associated addition can
/// differ.
///
/// Returns the number of operand rewrites performed.
pub fn reassociate(f: &mut OptFrame, scope: OptScope) -> u64 {
    let mut rewrites = 0;
    for i in 0..f.len() as Slot {
        if !f.slot(i).valid {
            continue;
        }
        // Copy propagation on both operand positions.
        for which in [Operand::A, Operand::B] {
            while let Some(Src::Slot(m)) = f.slot(i).operand(which) {
                if !visible(f, m, i, scope) {
                    break;
                }
                let Some(real) = copy_source(f.slot(m)) else {
                    break;
                };
                f.rewrite_operand(i, which, Some(real));
                rewrites += 1;
            }
        }

        let op = f.slot(i).op;

        // Displacement folding through the base operand of memory ops and
        // immediate-form adds/subs.
        let base_foldable = matches!(op, Opcode::Load | Opcode::Store | Opcode::Lea)
            || (matches!(op, Opcode::Add | Opcode::Sub) && f.slot(i).src_b.is_none());
        let flags_block = f.slot(i).writes_flags && f.flags_uses(i) > 0;
        if base_foldable && !flags_block {
            while let Some(Src::Slot(m)) = f.slot(i).src_a {
                if !visible(f, m, i, scope) {
                    break;
                }
                let Some((x, d)) = add_chain_link(f.slot(m)) else {
                    break;
                };
                let new_imm = match op {
                    // SUB r, imm: value = (X + d) - imm = X - (imm - d).
                    Opcode::Sub => f.slot(i).imm.wrapping_sub(d),
                    _ => f.slot(i).imm.wrapping_add(d),
                };
                f.rewrite_operand_imm(i, Operand::A, Some(x), new_imm);
                rewrites += 1;
            }
        }

        // Fold an add-immediate chain feeding a load/lea *index*:
        // base + (X + d)*s + disp  =  base + X*s + (disp + d*s).
        if matches!(op, Opcode::Load | Opcode::Lea) {
            while let Some(Src::Slot(m)) = f.slot(i).src_b {
                if !visible(f, m, i, scope) {
                    break;
                }
                let Some((x, d)) = add_chain_link(f.slot(m)) else {
                    break;
                };
                let scale = f.slot(i).scale as i32;
                let new_imm = f.slot(i).imm.wrapping_add(d.wrapping_mul(scale));
                f.rewrite_operand_imm(i, Operand::B, Some(x), new_imm);
                rewrites += 1;
            }
        }
    }
    rewrites
}

// ---------------------------------------------------------------------
// Value-assertion fusion (ASST)
// ---------------------------------------------------------------------

/// Fuses `Cmp`/`Test` + `Assert` pairs into single `AssertCmp`/`AssertTest`
/// uops — the typical x86 *flag-generate then conditionally branch* idiom
/// collapses to one operation (§3.4). Returns the number of fusions.
pub fn assert_fuse(f: &mut OptFrame, scope: OptScope) -> u64 {
    let mut fused = 0;
    for i in 0..f.len() as Slot {
        let u = f.slot(i);
        if !u.valid || u.op != Opcode::Assert {
            continue;
        }
        let Some(FlagsSrc::Slot(m)) = u.flags_src else {
            continue;
        };
        if !visible(f, m, i, scope) {
            continue;
        }
        if matches!(f.slot(m).op, Opcode::Cmp | Opcode::Test) {
            f.fuse_assert(i, m);
            fused += 1;
        }
    }
    fused
}

// ---------------------------------------------------------------------
// Common-subexpression elimination (ALU part)
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct AluKey {
    op: Opcode,
    a: Option<Src>,
    b: Option<Src>,
    imm: i32,
    scale: u8,
    block: u16,
}

/// Eliminates redundant *value* computations: two uops with the same opcode
/// and operands compute the same value, so the later one's consumers read
/// the earlier result. Returns the number of redundancies collapsed.
///
/// The later uop is left for dead-code elimination — if its flags are still
/// consumed, it stays.
pub fn cse_alu(f: &mut OptFrame, scope: OptScope) -> u64 {
    let mut collapsed = 0;
    let mut table: HashMap<AluKey, Slot> = HashMap::new();
    for i in 0..f.len() as Slot {
        let u = f.slot(i);
        if !u.valid || !u.op.is_alu() || u.op.is_flags_only() || u.dst_arch.is_none() {
            continue;
        }
        // Mov/copies are reassociation's job.
        if copy_source(u).is_some() {
            continue;
        }
        let (mut a, mut b) = (u.src_a, u.src_b);
        if u.op.is_commutative() && a.is_some() && b.is_some() && a > b {
            std::mem::swap(&mut a, &mut b);
        }
        let key = AluKey {
            op: u.op,
            a,
            b,
            imm: u.imm,
            scale: u.scale,
            block: match scope {
                OptScope::Frame | OptScope::InterBlock => 0,
                OptScope::Block => f.block_of(i),
            },
        };
        match table.get(&key) {
            Some(&m) => {
                if f.redirect_value_uses(i, Src::Slot(m)) > 0 {
                    collapsed += 1;
                }
            }
            None => {
                table.insert(key, i);
            }
        }
    }
    collapsed
}

// ---------------------------------------------------------------------
// Memory optimization: store forwarding + redundant load elimination
// ---------------------------------------------------------------------

/// A symbolic memory address: two references are the same location only if
/// all four components are identical (§6.4: "two memory instructions are
/// deemed equivalent only if their base registers are symbolically the same
/// and their immediates and scales are literally the same").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct AddrKey {
    base: Option<Src>,
    index: Option<Src>,
    scale: u8,
    disp: i32,
}

impl AddrKey {
    fn of(u: &OptUop) -> Option<AddrKey> {
        let (base, index, scale, disp) = u.mem_addr()?;
        Some(AddrKey {
            base,
            index,
            scale,
            disp,
        })
    }

    /// Conservative may-alias: identical register expressions at word
    /// distance ≥ 4 provably do not overlap; anything else may.
    fn may_alias(&self, other: &AddrKey) -> bool {
        if self == other {
            return true;
        }
        if self.base == other.base && self.index == other.index && self.scale == other.scale {
            let delta = (self.disp as i64 - other.disp as i64).abs();
            return delta < 4;
        }
        true
    }
}

#[derive(Debug, Clone)]
struct Available {
    key: AddrKey,
    value: Src,
    provider: Slot,
    provider_is_store: bool,
    /// May-alias stores between the provider and the present point, kept
    /// only under speculative memory optimization.
    crossed: Vec<Slot>,
}

/// Counters from one memory-optimization run.
#[derive(Debug, Default, Clone, Copy)]
pub struct MemOptResult {
    /// Loads forwarded from an earlier store.
    pub store_forwards: u64,
    /// Loads eliminated against an earlier load.
    pub redundant_loads: u64,
    /// Removals that speculated across may-alias stores.
    pub speculative: u64,
}

/// Store forwarding and redundant-load elimination over symbolic addresses.
///
/// With `speculative` enabled, a may-alias store between a matching
/// store/load (or load/load) pair does not kill the match if the alias
/// profile recorded no aliasing event between the instructions involved —
/// the intervening stores are marked **unsafe** instead, and the hardware
/// compares their addresses against all prior frame transactions at
/// execution, aborting on a conflict (§3.4).
///
/// `enable_sf` gates store→load forwarding, `enable_rle` gates load→load
/// elimination (the redundant-load half of CSE) so that the paper's
/// leave-one-out ablation (Figure 10) can disable them independently.
pub fn memory_opt(
    f: &mut OptFrame,
    scope: OptScope,
    profile: &AliasProfile,
    speculative: bool,
    enable_sf: bool,
    enable_rle: bool,
) -> MemOptResult {
    let mut res = MemOptResult::default();
    let mut avail: Vec<Available> = Vec::new();
    let mut seen_keys: std::collections::HashSet<AddrKey> = std::collections::HashSet::new();
    let mut block = 0u16;

    for i in 0..f.len() as Slot {
        if !f.slot(i).valid {
            continue;
        }
        if scope == OptScope::Block && f.block_of(i) != block {
            block = f.block_of(i);
            avail.clear();
            seen_keys.clear();
        }
        let u = f.slot(i);
        if u.is_store() {
            let key = AddrKey::of(u).expect("store has an address");
            // A store with an earlier same-address access in the frame can
            // never be marked unsafe: at execution its address would
            // trivially match that prior transaction and abort the frame.
            // Entries that would have to speculate across it die instead.
            let unsafe_eligible = speculative && !seen_keys.contains(&key);
            seen_keys.insert(key);
            // Update or kill overlapping entries.
            let mut j = 0;
            while j < avail.len() {
                let e = &mut avail[j];
                if e.key == key {
                    avail.swap_remove(j);
                    continue;
                }
                if e.key.may_alias(&key) {
                    if unsafe_eligible {
                        e.crossed.push(i);
                        j += 1;
                    } else {
                        avail.swap_remove(j);
                    }
                    continue;
                }
                j += 1;
            }
            avail.push(Available {
                key,
                value: u.src_b.expect("store carries data"),
                provider: i,
                provider_is_store: true,
                crossed: Vec::new(),
            });
        } else if u.is_load() {
            let key = AddrKey::of(u).expect("load has an address");
            seen_keys.insert(key);
            let hit = avail.iter().position(|e| e.key == key);
            match hit {
                Some(pos) => {
                    let entry = avail[pos].clone();
                    let enabled = if entry.provider_is_store {
                        enable_sf
                    } else {
                        enable_rle
                    };
                    // A crossed store whose profile shows aliasing with
                    // either end of the pair forbids the speculation.
                    let load_x86 = f.slot(i).x86_addr;
                    let provider_x86 = f.slot(entry.provider).x86_addr;
                    let profiled_alias = entry.crossed.iter().any(|&s| {
                        let sx = f.slot(s).x86_addr;
                        profile.aliased(sx, load_x86) || profile.aliased(sx, provider_x86)
                    });
                    if enabled && !profiled_alias {
                        f.redirect_value_uses(i, entry.value);
                        f.invalidate(i);
                        if entry.crossed.is_empty() {
                            // Plain (non-speculative) removal.
                        } else {
                            for &s in &entry.crossed {
                                f.mark_unsafe_store(s);
                            }
                            f.note_speculative_removal();
                            res.speculative += 1;
                        }
                        if entry.provider_is_store {
                            res.store_forwards += 1;
                        } else {
                            res.redundant_loads += 1;
                        }
                    } else {
                        // The stale entry cannot be used; this load becomes
                        // the fresh provider for its address.
                        avail[pos] = Available {
                            key,
                            value: Src::Slot(i),
                            provider: i,
                            provider_is_store: false,
                            crossed: Vec::new(),
                        };
                    }
                }
                None => avail.push(Available {
                    key,
                    value: Src::Slot(i),
                    provider: i,
                    provider_is_store: false,
                    crossed: Vec::new(),
                }),
            }
        }
    }
    res
}

// ---------------------------------------------------------------------
// Dead-code elimination
// ---------------------------------------------------------------------

/// Removes uops whose value and flags results have no consumers and which
/// have no side effects. Iterates to a fixpoint (removing a consumer can
/// kill its producers). Returns the number of uops removed.
///
/// In block scope, the last writer of each general-purpose register within
/// a block — and the last flags writer — are kept alive, because blocks
/// optimized individually must preserve their architectural outputs (§6.3).
pub fn dce(f: &mut OptFrame, scope: OptScope) -> u64 {
    let mut removed = 0;
    loop {
        let keep = match scope {
            OptScope::Frame => Vec::new(),
            // Multi-exit scopes: each block's GPR outputs must stay
            // materialized. In inter-block scope the *final* block has no
            // further exit — its outputs are the frame live-outs, which
            // the use counts already protect.
            OptScope::Block => block_keep_set(f, false),
            OptScope::InterBlock => block_keep_set(f, true),
        };
        let mut changed = false;
        for i in (0..f.len() as Slot).rev() {
            let u = f.slot(i);
            if !u.valid || u.has_side_effect() {
                continue;
            }
            if f.value_uses(i) > 0 {
                continue;
            }
            if u.writes_flags && f.flags_uses(i) > 0 {
                continue;
            }
            if scope == OptScope::Block && keep.contains(&i) {
                continue;
            }
            f.invalidate(i);
            removed += 1;
            changed = true;
        }
        if !changed {
            return removed;
        }
    }
}

/// Slots that must stay alive under multi-exit optimization scopes: the
/// final valid writer of each GPR, and the final flags writer, within each
/// block. With `skip_final_block`, the last block's writers are exempt
/// (its outputs are the frame live-outs, already protected by use counts).
fn block_keep_set(f: &OptFrame, skip_final_block: bool) -> Vec<Slot> {
    let final_block = f
        .iter_valid()
        .map(|(i, _)| f.block_of(i))
        .max()
        .unwrap_or(0);
    let mut keep = Vec::new();
    let mut cur_block = u16::MAX;
    let mut last_writer: [Option<Slot>; 8] = [None; 8];
    let mut last_flags: Option<Slot> = None;
    let flush = |keep: &mut Vec<Slot>, w: &mut [Option<Slot>; 8], fl: &mut Option<Slot>| {
        keep.extend(w.iter().flatten().copied());
        keep.extend(fl.iter().copied());
        *w = [None; 8];
        *fl = None;
    };
    for (i, u) in f.iter() {
        if !u.valid {
            continue;
        }
        if f.block_of(i) != cur_block {
            flush(&mut keep, &mut last_writer, &mut last_flags);
            cur_block = f.block_of(i);
        }
        if skip_final_block && cur_block == final_block {
            break;
        }
        if let Some(d) = u.dst_arch {
            if d.is_gpr() {
                last_writer[d.index()] = Some(i);
            }
        }
        if u.writes_flags {
            last_flags = Some(i);
        }
    }
    flush(&mut keep, &mut last_writer, &mut last_flags);
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::OptScope;
    use replay_frame::{Frame, FrameId};
    use replay_uop::{ArchReg, Cond, Uop};

    fn mk_frame(uops: Vec<Uop>) -> Frame {
        let n = uops.len();
        Frame {
            id: FrameId(0),
            start_addr: 0x1000,
            uops,
            x86_addrs: vec![0x1000],
            block_starts: vec![0],
            expectations: vec![],
            exit_next: 0x2000,
            orig_uop_count: n,
        }
    }

    #[test]
    fn nop_and_jmp_removed() {
        let mut f = OptFrame::from_frame(&mk_frame(vec![
            Uop::nop(),
            Uop::jmp(0x50),
            Uop::mov_imm(ArchReg::Eax, 1),
        ]));
        assert_eq!(nop_removal(&mut f), 2);
        assert_eq!(f.uop_count(), 1);
    }

    #[test]
    fn const_prop_folds_chains() {
        // ET0 <- 40; EBX <- ET0 + 2 folds to EBX <- 42. A trailing Cmp
        // takes over the frame's flags-out so the Add's flags are free.
        let mut f = OptFrame::from_frame(&mk_frame(vec![
            Uop::mov_imm(ArchReg::Et0, 40),
            Uop::alu_imm(Opcode::Add, ArchReg::Ebx, ArchReg::Et0, 2),
            Uop::cmp_imm(ArchReg::Esi, 0),
        ]));
        let r = const_prop(&mut f, OptScope::Frame);
        assert_eq!(r.folded, 1);
        assert_eq!(f.slot(1).op, Opcode::MovImm);
        assert_eq!(f.slot(1).imm, 42);
        // The producer is now dead.
        assert_eq!(dce(&mut f, OptScope::Frame), 1);
    }

    #[test]
    fn const_prop_never_folds_the_flags_out_writer() {
        // The frame's final flags writer defines the exit flags; folding
        // it to MovImm would lose them.
        let mut f = OptFrame::from_frame(&mk_frame(vec![
            Uop::mov_imm(ArchReg::Et0, 40),
            Uop::alu_imm(Opcode::Add, ArchReg::Ebx, ArchReg::Et0, 2),
        ]));
        let r = const_prop(&mut f, OptScope::Frame);
        assert_eq!(r.folded, 0);
        assert_eq!(f.slot(1).op, Opcode::Add);
    }

    #[test]
    fn const_prop_respects_consumed_flags() {
        // The Add's flags feed an assert, so it cannot be replaced by
        // MovImm even though its value is constant.
        let mut f = OptFrame::from_frame(&mk_frame(vec![
            Uop::mov_imm(ArchReg::Eax, 1),
            Uop::alu_imm(Opcode::Add, ArchReg::Ebx, ArchReg::Eax, -1),
            Uop::assert_cc(Cond::Eq),
        ]));
        let r = const_prop(&mut f, OptScope::Frame);
        assert_eq!(r.folded, 0);
        assert_eq!(f.slot(1).op, Opcode::Add);
    }

    #[test]
    fn const_prop_removes_true_target_assert() {
        // ET2 <- 0x5005 ; assert (cmp ET2, 0x5005) Z — provably true.
        let mut f = OptFrame::from_frame(&mk_frame(vec![
            Uop::mov_imm(ArchReg::Et2, 0x5005),
            Uop::assert_cmp(Cond::Eq, ArchReg::Et2, None, 0x5005),
        ]));
        let r = const_prop(&mut f, OptScope::Frame);
        assert_eq!(r.asserts_removed, 1);
        assert_eq!(f.uop_count(), 1);
    }

    #[test]
    fn const_prop_keeps_false_assert() {
        let mut f = OptFrame::from_frame(&mk_frame(vec![
            Uop::mov_imm(ArchReg::Et2, 0x1111),
            Uop::assert_cmp(Cond::Eq, ArchReg::Et2, None, 0x5005),
        ]));
        let r = const_prop(&mut f, OptScope::Frame);
        assert_eq!(r.asserts_removed, 0, "a failing assert must stay");
        assert_eq!(f.uop_count(), 2);
    }

    #[test]
    fn reassoc_flattens_push_chain() {
        // The paper's PUSH/PUSH example: both stores and the load end up
        // based on the live-in ESP, and one stack update dies.
        let mut f = OptFrame::from_frame(&mk_frame(vec![
            Uop::store(ArchReg::Esp, -4, ArchReg::Ebp),
            Uop::lea(ArchReg::Esp, ArchReg::Esp, None, 1, -4),
            Uop::store(ArchReg::Esp, -4, ArchReg::Ebx),
            Uop::lea(ArchReg::Esp, ArchReg::Esp, None, 1, -4),
            Uop::load(ArchReg::Ecx, ArchReg::Esp, 0xc),
        ]));
        let n = reassociate(&mut f, OptScope::Frame);
        assert!(n >= 3);
        // Store 2 now reads live-in ESP with displacement -8.
        assert_eq!(f.slot(2).src_a, Some(Src::LiveIn(ArchReg::Esp)));
        assert_eq!(f.slot(2).imm, -8);
        // The load reads [ESP0 + 4] (0xc - 8).
        assert_eq!(f.slot(4).src_a, Some(Src::LiveIn(ArchReg::Esp)));
        assert_eq!(f.slot(4).imm, 4);
        // Second LEA collapses to ESP0 - 8.
        assert_eq!(f.slot(3).src_a, Some(Src::LiveIn(ArchReg::Esp)));
        assert_eq!(f.slot(3).imm, -8);
        // First LEA now feeds nothing but... nothing: dead.
        assert_eq!(dce(&mut f, OptScope::Frame), 1);
        assert!(!f.slot(1).valid);
    }

    #[test]
    fn reassoc_blocked_by_flag_consumers() {
        // ESP' = ESP - 4 (lea); EAX = ESP' + 8 with flags read by assert:
        // folding EAX's base would change CF/OF semantics.
        let mut f = OptFrame::from_frame(&mk_frame(vec![
            Uop::lea(ArchReg::Ebx, ArchReg::Esp, None, 1, -4),
            Uop::alu_imm(Opcode::Add, ArchReg::Eax, ArchReg::Ebx, 8),
            Uop::assert_cc(Cond::Ae),
        ]));
        reassociate(&mut f, OptScope::Frame);
        assert_eq!(
            f.slot(1).src_a,
            Some(Src::Slot(0)),
            "fold suppressed while flags are live"
        );
    }

    #[test]
    fn copy_propagation_through_mov() {
        let mut f = OptFrame::from_frame(&mk_frame(vec![
            Uop::mov(ArchReg::Edx, ArchReg::Ecx),
            Uop::alu(Opcode::Or, ArchReg::Edx, ArchReg::Edx, ArchReg::Ebx),
        ]));
        let n = reassociate(&mut f, OptScope::Frame);
        assert_eq!(n, 1);
        // The OR now reads ECX directly — the paper's uops 08/09 example.
        assert_eq!(f.slot(1).src_a, Some(Src::LiveIn(ArchReg::Ecx)));
        // The OR overwrites EDX, so the live-out points at slot 1 and the
        // Mov is dead once its only consumer has been rewritten.
        assert_eq!(dce(&mut f, OptScope::Frame), 1);
        assert!(!f.slot(0).valid);
    }

    #[test]
    fn assert_fusion() {
        // A later flag writer (the Add) takes over flags-out, so the fused
        // Cmp is genuinely dead.
        let mut f = OptFrame::from_frame(&mk_frame(vec![
            Uop::cmp_imm(ArchReg::Eax, 0),
            Uop::assert_cc(Cond::Eq),
            Uop::alu_imm(Opcode::Add, ArchReg::Eax, ArchReg::Eax, 1),
        ]));
        assert_eq!(assert_fuse(&mut f, OptScope::Frame), 1);
        assert_eq!(f.slot(1).op, Opcode::AssertCmp);
        assert_eq!(f.slot(1).src_a, Some(Src::LiveIn(ArchReg::Eax)));
        // Cmp is dead now.
        assert_eq!(dce(&mut f, OptScope::Frame), 1);
        assert_eq!(f.uop_count(), 2);
        assert!(!f.slot(0).valid);
    }

    #[test]
    fn assert_fusion_keeps_shared_cmp() {
        // The Cmp's flags also feed the frame's flags-out, so fusion
        // happens but the Cmp survives DCE.
        let mut f = OptFrame::from_frame(&mk_frame(vec![
            Uop::cmp_imm(ArchReg::Eax, 0),
            Uop::assert_cc(Cond::Eq),
            // (no further flag writer: Cmp is flags-out)
        ]));
        assert_eq!(assert_fuse(&mut f, OptScope::Frame), 1);
        assert_eq!(dce(&mut f, OptScope::Frame), 0, "flags-out keeps the Cmp");
    }

    #[test]
    fn cse_alu_collapses() {
        let mut f = OptFrame::from_frame(&mk_frame(vec![
            Uop::lea(ArchReg::Eax, ArchReg::Esi, Some(ArchReg::Edi), 4, 8),
            Uop::lea(ArchReg::Ebx, ArchReg::Esi, Some(ArchReg::Edi), 4, 8),
            Uop::alu(Opcode::Add, ArchReg::Ecx, ArchReg::Eax, ArchReg::Ebx),
        ]));
        assert_eq!(cse_alu(&mut f, OptScope::Frame), 1);
        // Both inputs of the Add now come from slot 0. (EBX's live-out
        // keeps slot 1 alive unless the frame overwrites EBX later.)
        assert_eq!(f.slot(2).src_a, Some(Src::Slot(0)));
        assert_eq!(f.slot(2).src_b, Some(Src::Slot(0)));
    }

    #[test]
    fn cse_alu_commutative_normalization() {
        let mut f = OptFrame::from_frame(&mk_frame(vec![
            Uop::alu(Opcode::Add, ArchReg::Eax, ArchReg::Esi, ArchReg::Edi),
            Uop::alu(Opcode::Add, ArchReg::Ebx, ArchReg::Edi, ArchReg::Esi),
            Uop::store(ArchReg::Ebx, 0, ArchReg::Eax),
        ]));
        assert_eq!(cse_alu(&mut f, OptScope::Frame), 1);
        assert_eq!(f.slot(2).src_a, Some(Src::Slot(0)));
    }

    #[test]
    fn cse_alu_keeps_duplicate_with_consumed_flags() {
        // Two identical Adds; the second one's flags feed an assert, so
        // CSE redirects its *value* consumers to the first but DCE must
        // keep it as a flags writer. A trailing Cmp takes over flags-out,
        // leaving the assert as the only thing pinning the duplicate.
        let mut f = OptFrame::from_frame(&mk_frame(vec![
            Uop::alu(Opcode::Add, ArchReg::Eax, ArchReg::Esi, ArchReg::Edi),
            Uop::alu(Opcode::Add, ArchReg::Ebx, ArchReg::Esi, ArchReg::Edi),
            Uop::assert_cc(Cond::Eq),
            Uop::store(ArchReg::Esp, 0, ArchReg::Ebx),
            Uop::cmp_imm(ArchReg::Esi, 0),
        ]));
        assert_eq!(cse_alu(&mut f, OptScope::Frame), 1);
        // The store's data now comes from the first Add...
        assert_eq!(f.slot(3).src_b, Some(Src::Slot(0)));
        // ...but the assert still reads the duplicate's flags.
        assert_eq!(f.slot(2).flags_src, Some(FlagsSrc::Slot(1)));
        assert_eq!(dce(&mut f, OptScope::Frame), 0);
        assert!(f.slot(1).valid, "live flags writer must survive CSE + DCE");
    }

    #[test]
    fn cse_alu_keeps_flags_out_duplicate() {
        // The duplicate is the frame's final flags writer: even with every
        // value use redirected, the exit flags pin it.
        let mut f = OptFrame::from_frame(&mk_frame(vec![
            Uop::alu(Opcode::Add, ArchReg::Eax, ArchReg::Esi, ArchReg::Edi),
            Uop::alu(Opcode::Add, ArchReg::Ebx, ArchReg::Esi, ArchReg::Edi),
        ]));
        assert_eq!(cse_alu(&mut f, OptScope::Frame), 1);
        assert_eq!(
            dce(&mut f, OptScope::Frame),
            0,
            "flags-out keeps the duplicate"
        );
        assert!(f.slot(1).valid);
    }

    #[test]
    fn cse_alu_skips_flags_only_ops() {
        // Cmp computes no value: two identical Cmps are not CSE candidates
        // (each is an independent flags definition for its own assert).
        let mut f = OptFrame::from_frame(&mk_frame(vec![
            Uop::cmp_imm(ArchReg::Eax, 5),
            Uop::assert_cc(Cond::Eq),
            Uop::cmp_imm(ArchReg::Eax, 5),
            Uop::assert_cc(Cond::Eq),
        ]));
        assert_eq!(cse_alu(&mut f, OptScope::Frame), 0);
        assert!(f.slot(0).valid && f.slot(2).valid);
    }

    #[test]
    fn store_forward_rewrites_fused_assert_operand() {
        // [ESP-4] <- EBP; ECX <- [ESP-4]; assert-cmp ECX == 7. Forwarding
        // routes the store data into the assert's operand and kills the
        // load with no flag damage (loads define no flags).
        let mut f = OptFrame::from_frame(&mk_frame(vec![
            Uop::store(ArchReg::Esp, -4, ArchReg::Ebp),
            Uop::load(ArchReg::Ecx, ArchReg::Esp, -4),
            Uop::assert_cmp(Cond::Eq, ArchReg::Ecx, None, 7),
            Uop::cmp_imm(ArchReg::Esi, 0),
        ]));
        let r = memory_opt(
            &mut f,
            OptScope::Frame,
            &AliasProfile::empty(),
            true,
            true,
            true,
        );
        assert_eq!(r.store_forwards, 1);
        assert!(!f.slot(1).valid);
        assert_eq!(f.slot(2).src_a, Some(Src::LiveIn(ArchReg::Ebp)));
        // Flags-out is still the trailing Cmp; nothing points at the load.
        assert_eq!(dce(&mut f, OptScope::Frame), 0);
    }

    #[test]
    fn store_forwarding_basic() {
        // [ESP-4] <- EBP ... EBX <- [ESP-4]  =>  load eliminated.
        let mut f = OptFrame::from_frame(&mk_frame(vec![
            Uop::store(ArchReg::Esp, -4, ArchReg::Ebp),
            Uop::load(ArchReg::Ebx, ArchReg::Esp, -4),
        ]));
        let r = memory_opt(
            &mut f,
            OptScope::Frame,
            &AliasProfile::empty(),
            true,
            true,
            true,
        );
        assert_eq!(r.store_forwards, 1);
        assert!(!f.slot(1).valid);
        // Live-out EBX now reads the forwarded EBP live-in.
        let lo: std::collections::HashMap<_, _> = f.live_out().iter().copied().collect();
        assert_eq!(lo[&ArchReg::Ebx], Src::LiveIn(ArchReg::Ebp));
    }

    #[test]
    fn redundant_load_elimination() {
        let mut f = OptFrame::from_frame(&mk_frame(vec![
            Uop::load(ArchReg::Eax, ArchReg::Esi, 0x10),
            Uop::load(ArchReg::Ebx, ArchReg::Esi, 0x10),
        ]));
        let r = memory_opt(
            &mut f,
            OptScope::Frame,
            &AliasProfile::empty(),
            true,
            true,
            true,
        );
        assert_eq!(r.redundant_loads, 1);
        assert!(!f.slot(1).valid);
    }

    #[test]
    fn same_base_disjoint_disps_do_not_block() {
        // A store to [ESP-8] between [ESP-4] accesses provably does not
        // alias (word distance >= 4): non-speculative forwarding still
        // applies.
        let mut f = OptFrame::from_frame(&mk_frame(vec![
            Uop::store(ArchReg::Esp, -4, ArchReg::Ebp),
            Uop::store(ArchReg::Esp, -8, ArchReg::Ebx),
            Uop::load(ArchReg::Ecx, ArchReg::Esp, -4),
        ]));
        let r = memory_opt(
            &mut f,
            OptScope::Frame,
            &AliasProfile::empty(),
            false, // speculation off: must still forward
            true,
            true,
        );
        assert_eq!(r.store_forwards, 1);
        assert_eq!(r.speculative, 0);
        assert_eq!(f.unsafe_store_count(), 0);
    }

    #[test]
    fn unknown_base_blocks_nonspeculative_but_not_speculative() {
        // Store via EDI between the pair: may alias. Distinct x86
        // addresses let the alias profile name the instructions.
        let uops = vec![
            Uop::store(ArchReg::Esp, -4, ArchReg::Ebp).at(0x100),
            Uop::store(ArchReg::Edi, 0, ArchReg::Ebx).at(0x105),
            Uop::load(ArchReg::Ecx, ArchReg::Esp, -4).at(0x10a),
        ];
        // Non-speculative: blocked.
        let mut f = OptFrame::from_frame(&mk_frame(uops.clone()));
        let r = memory_opt(
            &mut f,
            OptScope::Frame,
            &AliasProfile::empty(),
            false,
            true,
            true,
        );
        assert_eq!(r.store_forwards, 0);
        assert!(f.slot(2).valid);

        // Speculative with a clean profile: forwarded, intervening store
        // marked unsafe.
        let mut f = OptFrame::from_frame(&mk_frame(uops.clone()));
        let r = memory_opt(
            &mut f,
            OptScope::Frame,
            &AliasProfile::empty(),
            true,
            true,
            true,
        );
        assert_eq!(r.store_forwards, 1);
        assert_eq!(r.speculative, 1);
        assert_eq!(f.unsafe_store_count(), 1);
        assert!(f.slot(1).unsafe_store);

        // Speculative but the profile recorded an aliasing event between
        // the intervening store and the load: blocked.
        let mut f = OptFrame::from_frame(&mk_frame(uops));
        let mut profile = AliasProfile::new();
        profile.record(0x105, 0x10a);
        let r = memory_opt(&mut f, OptScope::Frame, &profile, true, true, true);
        assert_eq!(
            r.store_forwards, 0,
            "profiled alias forbids the speculation"
        );
        assert_eq!(f.unsafe_store_count(), 0);
    }

    #[test]
    fn sf_and_rle_independently_gated() {
        let uops = vec![
            Uop::store(ArchReg::Esp, -4, ArchReg::Ebp),
            Uop::load(ArchReg::Ebx, ArchReg::Esp, -4),
            Uop::load(ArchReg::Ecx, ArchReg::Esi, 8),
            Uop::load(ArchReg::Edx, ArchReg::Esi, 8),
        ];
        // SF off: the store/load pair stays; the load/load pair collapses.
        let mut f = OptFrame::from_frame(&mk_frame(uops.clone()));
        let r = memory_opt(
            &mut f,
            OptScope::Frame,
            &AliasProfile::empty(),
            true,
            false,
            true,
        );
        assert_eq!(r.store_forwards, 0);
        assert_eq!(r.redundant_loads, 1);
        // RLE off: only the forward happens.
        let mut f = OptFrame::from_frame(&mk_frame(uops));
        let r = memory_opt(
            &mut f,
            OptScope::Frame,
            &AliasProfile::empty(),
            true,
            true,
            false,
        );
        assert_eq!(r.store_forwards, 1);
        assert_eq!(r.redundant_loads, 0);
    }

    #[test]
    fn dce_keeps_side_effects_and_live_outs() {
        let mut f = OptFrame::from_frame(&mk_frame(vec![
            Uop::mov_imm(ArchReg::Et0, 7),             // temp, unused -> dead
            Uop::mov_imm(ArchReg::Eax, 1),             // GPR live-out -> kept
            Uop::store(ArchReg::Esp, 0, ArchReg::Eax), // side effect -> kept
        ]));
        assert_eq!(dce(&mut f, OptScope::Frame), 1);
        assert!(!f.slot(0).valid);
        assert!(f.slot(1).valid);
        assert!(f.slot(2).valid);
    }

    #[test]
    fn dce_cascades_through_chains() {
        // c = a + b; d = c + 1; both dead once nothing reads d. The
        // trailing Cmp holds the frame's exit flags (and itself survives).
        let mut f = OptFrame::from_frame(&mk_frame(vec![
            Uop::alu(Opcode::Add, ArchReg::Et0, ArchReg::Esi, ArchReg::Edi),
            Uop::alu_imm(Opcode::Add, ArchReg::Et1, ArchReg::Et0, 1),
            Uop::cmp_imm(ArchReg::Esi, 0),
        ]));
        assert_eq!(dce(&mut f, OptScope::Frame), 2);
        assert_eq!(f.uop_count(), 1);
    }

    #[test]
    fn block_scope_prevents_cross_block_rewrites() {
        // Two blocks; the second reads the first's ESP update. Block-scope
        // reassociation must not fold across the boundary.
        let frame = Frame {
            block_starts: vec![0, 1],
            ..mk_frame(vec![
                Uop::lea(ArchReg::Esp, ArchReg::Esp, None, 1, -4),
                Uop::load(ArchReg::Eax, ArchReg::Esp, 0),
            ])
        };
        let mut f = OptFrame::from_frame(&frame);
        assert_eq!(reassociate(&mut f, OptScope::Block), 0);
        assert_eq!(f.slot(1).src_a, Some(Src::Slot(0)));
        // Frame scope folds it.
        let mut f = OptFrame::from_frame(&frame);
        assert_eq!(reassociate(&mut f, OptScope::Frame), 1);
        assert_eq!(f.slot(1).src_a, Some(Src::LiveIn(ArchReg::Esp)));
    }

    #[test]
    fn block_scope_dce_keeps_block_live_outs() {
        // EBX is overwritten in block 1, so in frame scope the block-0
        // write is dead; block scope must keep it (it is block 0's GPR
        // output).
        let frame = Frame {
            block_starts: vec![0, 1],
            ..mk_frame(vec![
                Uop::mov_imm(ArchReg::Ebx, 1),
                Uop::mov_imm(ArchReg::Ebx, 2),
            ])
        };
        let mut f = OptFrame::from_frame(&frame);
        assert_eq!(dce(&mut f, OptScope::Frame), 1);
        let mut f = OptFrame::from_frame(&frame);
        assert_eq!(dce(&mut f, OptScope::Block), 0);
    }

    #[test]
    fn block_scope_memory_table_clears() {
        let frame = Frame {
            block_starts: vec![0, 1],
            ..mk_frame(vec![
                Uop::store(ArchReg::Esp, -4, ArchReg::Ebp),
                Uop::load(ArchReg::Ebx, ArchReg::Esp, -4),
            ])
        };
        let mut f = OptFrame::from_frame(&frame);
        let r = memory_opt(
            &mut f,
            OptScope::Block,
            &AliasProfile::empty(),
            true,
            true,
            true,
        );
        assert_eq!(r.store_forwards, 0, "no forwarding across blocks");
    }
}
