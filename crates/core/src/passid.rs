//! Pass introspection: named handles for the seven optimization passes.
//!
//! The pipeline driver ([`crate::optimize`]) and the differential checking
//! harness (`replay-check`) both need to invoke passes individually — the
//! driver to run the paper's fixed order, the harness to run arbitrary
//! permutations and prefixes of it. [`PassId`] names each pass and
//! [`run_pass`] dispatches one by name, updating an [`OptStats`] the same
//! way the full pipeline would.

use crate::alias::AliasProfile;
use crate::passes;
use crate::pipeline::OptScope;
use crate::{OptFrame, OptStats};
use std::fmt;

/// One of the seven optimization passes, in the pipeline's canonical order.
///
/// The short names follow the paper's Figure 10 ablation labels where one
/// exists (`NOP`, `CP`, `RA`, `ASST`, `SF`, `CSE`); the memory pass (store
/// forwarding + redundant-load elimination) is `MEM` and dead-code
/// elimination is `DCE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PassId {
    /// NOP and intra-frame unconditional-jump removal.
    NopRemoval,
    /// Constant propagation (including provably-true assert deletion).
    ConstProp,
    /// Reassociation and copy propagation.
    Reassociate,
    /// Value-assertion fusion (`Cmp`/`Test` + `Assert` → one uop).
    AssertFuse,
    /// Memory optimization: store forwarding + redundant-load elimination.
    MemoryOpt,
    /// Common-subexpression elimination over ALU values.
    CseAlu,
    /// Dead-code elimination (the collector every other pass relies on).
    Dce,
}

impl PassId {
    /// Every pass, in the pipeline's canonical order (§6.4): NOP → CP → RA
    /// → ASST → MEM → CSE → DCE.
    pub const ALL: [PassId; 7] = [
        PassId::NopRemoval,
        PassId::ConstProp,
        PassId::Reassociate,
        PassId::AssertFuse,
        PassId::MemoryOpt,
        PassId::CseAlu,
        PassId::Dce,
    ];

    /// The pass's short label.
    pub fn name(self) -> &'static str {
        match self {
            PassId::NopRemoval => "NOP",
            PassId::ConstProp => "CP",
            PassId::Reassociate => "RA",
            PassId::AssertFuse => "ASST",
            PassId::MemoryOpt => "MEM",
            PassId::CseAlu => "CSE",
            PassId::Dce => "DCE",
        }
    }

    /// Looks a pass up by its short label (case insensitive).
    pub fn from_name(name: &str) -> Option<PassId> {
        PassId::ALL
            .into_iter()
            .find(|p| p.name().eq_ignore_ascii_case(name))
    }
}

impl fmt::Display for PassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything a single pass invocation needs beyond the frame itself.
///
/// Mirrors the knobs of [`crate::OptConfig`] that individual passes consume;
/// the permutation harness constructs one directly, the pipeline driver
/// derives one from its `OptConfig`.
#[derive(Debug, Clone, Copy)]
pub struct PassCtx<'a> {
    /// Optimization scope (frame / block / inter-block).
    pub scope: OptScope,
    /// The alias profile consulted by speculative memory optimization.
    pub profile: &'a AliasProfile,
    /// Allow speculative memory optimization across may-alias stores.
    pub speculative: bool,
    /// Enable the store-forwarding half of the memory pass.
    pub store_fwd: bool,
    /// Enable the redundant-load-elimination half of the memory pass.
    pub redundant_loads: bool,
}

impl<'a> PassCtx<'a> {
    /// A context with everything enabled at frame scope over the given
    /// profile — the RPO configuration's view of a single pass.
    pub fn full(profile: &'a AliasProfile) -> PassCtx<'a> {
        PassCtx {
            scope: OptScope::Frame,
            profile,
            speculative: true,
            store_fwd: true,
            redundant_loads: true,
        }
    }
}

/// Runs one pass over a frame, accumulating its counters into `stats`.
/// Returns the number of changes the pass made (the pipeline's quiescence
/// measure: rewrites + removals + fusions + folds).
pub fn run_pass(f: &mut OptFrame, pass: PassId, ctx: &PassCtx<'_>, stats: &mut OptStats) -> u64 {
    match pass {
        PassId::NopRemoval => {
            let n = passes::nop_removal(f);
            stats.nop_removed += n;
            n
        }
        PassId::ConstProp => {
            let r = passes::const_prop(f, ctx.scope);
            stats.const_folded += r.folded;
            stats.asserts_removed += r.asserts_removed;
            r.folded + r.operands_folded + r.asserts_removed
        }
        PassId::Reassociate => {
            let n = passes::reassociate(f, ctx.scope);
            stats.reassociations += n;
            n
        }
        PassId::AssertFuse => {
            let n = passes::assert_fuse(f, ctx.scope);
            stats.assert_fusions += n;
            n
        }
        PassId::MemoryOpt => {
            let r = passes::memory_opt(
                f,
                ctx.scope,
                ctx.profile,
                ctx.speculative,
                ctx.store_fwd,
                ctx.redundant_loads,
            );
            stats.store_forwards += r.store_forwards;
            stats.cse_loads += r.redundant_loads;
            stats.speculative_load_removals += r.speculative;
            r.store_forwards + r.redundant_loads
        }
        PassId::CseAlu => {
            let n = passes::cse_alu(f, ctx.scope);
            stats.cse_alu += n;
            n
        }
        PassId::Dce => {
            let n = passes::dce(f, ctx.scope);
            stats.dce_removed += n;
            n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for p in PassId::ALL {
            assert_eq!(PassId::from_name(p.name()), Some(p));
            assert_eq!(PassId::from_name(&p.name().to_lowercase()), Some(p));
        }
        assert_eq!(PassId::from_name("BOGUS"), None);
    }

    #[test]
    fn canonical_order_matches_pipeline() {
        // The pipeline's documented order: NOP → CP → RA → ASST → MEM →
        // CSE → DCE. Guard against accidental reordering of ALL.
        let names: Vec<&str> = PassId::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names, ["NOP", "CP", "RA", "ASST", "MEM", "CSE", "DCE"]);
    }
}
