//! # replay-core
//!
//! The rePLay micro-operation optimizer — the primary contribution of
//! *Dynamic Optimization of Micro-Operations* (HPCA 2003), §3–§4.
//!
//! The optimizer receives atomic frames from the frame constructor and
//! rewrites them using seven optimizations, three of them aggressive /
//! speculative:
//!
//! | Pass | Paper name | What it does |
//! |------|-----------|--------------|
//! | NOP removal | NOP | removes `NOP`s and intra-frame unconditional jumps |
//! | constant propagation | CP | folds constants through the dataflow graph; deletes trivially-true target assertions (e.g. `RET` to a known call site) |
//! | reassociation | RA | flattens add-immediate chains (stack-pointer updates) into the consumers' displacements; includes copy propagation |
//! | common-subexpression elimination | CSE | including redundant **load** elimination (speculatively across may-alias stores) |
//! | store forwarding | SF | speculative across may-alias stores via **unsafe store** marking |
//! | value-assertion fusion | ASST | fuses `CMP`/`TEST` + assertion into one uop |
//! | dead-code elimination | — | always enabled (every other pass relies on it) |
//!
//! Frames are first **remapped** (§4): the uop at buffer slot *m* writes
//! physical register *m*, so an operand's physical register number *is* the
//! index of its producer — the hardware's parent lookup is an array read.
//! Dataflow traversal, use counting, and the live-in/live-out marking of
//! Figure 4 all fall out of this representation; see [`OptFrame`].
//!
//! The crate also models the optimizer *datapath* latency (§4, §5.1.4): a
//! pipelined engine processing 10 cycles per uop with a configurable number
//! of pipeline stages; see [`OptimizerDatapath`].
//!
//! # Example
//!
//! ```
//! use replay_core::{optimize, AliasProfile, OptConfig};
//! use replay_frame::{Frame, FrameId};
//! use replay_uop::{ArchReg, Uop};
//!
//! // Two PUSHes: their stack updates merge and one uop disappears.
//! let frame = Frame {
//!     id: FrameId(0),
//!     start_addr: 0x1000,
//!     uops: vec![
//!         Uop::store(ArchReg::Esp, -4, ArchReg::Ebp),
//!         Uop::lea(ArchReg::Esp, ArchReg::Esp, None, 1, -4),
//!         Uop::store(ArchReg::Esp, -4, ArchReg::Ebx),
//!         Uop::lea(ArchReg::Esp, ArchReg::Esp, None, 1, -4),
//!         Uop::load(ArchReg::Ecx, ArchReg::Esp, 0xc),
//!         Uop::load(ArchReg::Ebx, ArchReg::Esp, 0x10),
//!         Uop::mov_imm(ArchReg::Eax, 0),
//!         Uop::nop(),
//!     ],
//!     x86_addrs: vec![0x1000],
//!     block_starts: vec![0],
//!     expectations: vec![],
//!     exit_next: 0x2000,
//!     orig_uop_count: 8,
//! };
//! let (optimized, stats) = optimize(&frame, &AliasProfile::empty(), &OptConfig::default());
//! assert!(stats.removed_uops() >= 2);
//! assert!(optimized.uop_count() < 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alias;
mod datapath;
mod exec;
pub mod frame_codec;
mod frame_ir;
mod ir;
pub mod passes;
mod passid;
mod pipeline;
mod plan;
mod schedule;
mod stats;

pub use alias::AliasProfile;
pub use datapath::{DatapathConfig, OptimizerDatapath};
pub use exec::{exec_frame, probe_frame, ExecScratch, FrameOutcome, MemTransaction, ProbeOutcome};
pub use frame_ir::OptFrame;
pub use ir::{FlagsSrc, Operand, OptUop, Slot, Src};
pub use passid::{run_pass, PassCtx, PassId};
pub use pipeline::{observe_opt_result, optimize, optimize_observed, OptConfig, OptScope};
pub use plan::{ExecPlan, PlanScratch};
pub use schedule::reschedule;
pub use stats::OptStats;
