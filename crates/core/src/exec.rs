//! Functional execution of renamed frames.
//!
//! Frames execute *atomically*: register and memory results are buffered
//! and committed only if every assertion holds and no unsafe store
//! conflicts. This is the reference semantics the state verifier checks
//! optimized frames against, and the source of truth for assertion/abort
//! outcomes in the simulator.

use crate::ir::{FlagsSrc, Src};
use crate::OptFrame;
use replay_uop::{eval_alu, eval_alu_with_flags, Flags, MachineState, Opcode};
use std::collections::HashMap;

/// One memory access performed during frame execution, in program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemTransaction {
    /// Index of the uop (in the compacted frame) that performed the access.
    pub uop_index: usize,
    /// Effective address.
    pub addr: u32,
    /// Value read or written.
    pub value: u32,
    /// True for stores.
    pub is_store: bool,
}

/// The outcome of probing a frame against a machine state without
/// committing ([`probe_frame`]): like [`FrameOutcome`] but borrowing the
/// transactions from the caller's [`ExecScratch`] instead of owning them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// Every assertion held. The accesses are in the scratch's
    /// [`ExecScratch::transactions`]; nothing was committed.
    Completed,
    /// An assertion fired at the given uop index.
    AssertFired {
        /// Index of the firing assertion.
        uop_index: usize,
    },
    /// An unsafe store's address matched an earlier transaction (§3.4).
    UnsafeConflict {
        /// Index of the conflicting unsafe store.
        uop_index: usize,
        /// Index of the earlier transaction it collided with.
        conflicts_with: usize,
    },
    /// The frame faulted (division by zero).
    Faulted {
        /// Index of the faulting uop.
        uop_index: usize,
    },
}

/// Reusable buffers for frame execution.
///
/// The simulator probes a frame once per dynamic frame-cache hit; keeping
/// the per-slot value/flag vectors, the store buffer, and the transaction
/// list in one long-lived scratch removes four heap allocations from that
/// hot path. A scratch can be reused across frames of any size — each
/// probe resets it to the frame's length first.
#[derive(Debug, Default)]
pub struct ExecScratch {
    values: Vec<u32>,
    flag_results: Vec<Flags>,
    store_buffer: HashMap<u32, u32>,
    transactions: Vec<MemTransaction>,
}

impl ExecScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> ExecScratch {
        ExecScratch::default()
    }

    /// The memory accesses recorded by the most recent probe, in program
    /// order.
    pub fn transactions(&self) -> &[MemTransaction] {
        &self.transactions
    }

    /// Clears the buffers and sizes the per-slot vectors for an `n`-uop
    /// frame.
    fn reset(&mut self, n: usize) {
        self.values.clear();
        self.values.resize(n, 0);
        self.flag_results.clear();
        self.flag_results.resize(n, Flags::CLEAR);
        self.store_buffer.clear();
        self.transactions.clear();
    }
}

/// The outcome of executing a frame against a machine state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameOutcome {
    /// Every assertion held; results were committed. Carries the memory
    /// transactions performed (after optimization).
    Completed {
        /// The frame's memory accesses in program order.
        transactions: Vec<MemTransaction>,
    },
    /// An assertion fired at the given uop index; state was rolled back
    /// (nothing committed).
    AssertFired {
        /// Index of the firing assertion.
        uop_index: usize,
    },
    /// An unsafe store's address matched an earlier transaction in the
    /// frame; the frame aborted (nothing committed, §3.4).
    UnsafeConflict {
        /// Index of the conflicting unsafe store.
        uop_index: usize,
        /// Index of the earlier transaction it collided with.
        conflicts_with: usize,
    },
    /// The frame faulted (division by zero) — treated as an abort.
    Faulted {
        /// Index of the faulting uop.
        uop_index: usize,
    },
}

/// Executes a compacted frame against `m`, committing its effects only on
/// clean completion.
///
/// Loads see earlier stores *from the same frame* (the hardware's store
/// buffer); stores commit to memory, and live-out registers and flags
/// commit to the register file, only when the whole frame succeeds.
///
/// # Panics
///
/// Panics if the frame contains invalidated slots (call
/// [`OptFrame::compact`] first) or a malformed uop.
pub fn exec_frame(frame: &OptFrame, m: &mut MachineState) -> FrameOutcome {
    let mut scratch = ExecScratch::new();
    match probe_frame(frame, m, &mut scratch) {
        ProbeOutcome::Completed => {
            commit_frame(frame, m, &scratch);
            FrameOutcome::Completed {
                transactions: std::mem::take(&mut scratch.transactions),
            }
        }
        ProbeOutcome::AssertFired { uop_index } => FrameOutcome::AssertFired { uop_index },
        ProbeOutcome::UnsafeConflict {
            uop_index,
            conflicts_with,
        } => FrameOutcome::UnsafeConflict {
            uop_index,
            conflicts_with,
        },
        ProbeOutcome::Faulted { uop_index } => FrameOutcome::Faulted { uop_index },
    }
}

/// Evaluates a compacted frame against `m` **without committing**: the
/// speculative values, store buffer, and memory transactions live in
/// `scratch`, and `m` is never mutated.
///
/// This is [`exec_frame`]'s first half, exposed so the simulator can test
/// whether a frame instance completes (it retires the traced records
/// architecturally through its own golden state afterwards) without
/// cloning the machine state — the clone of a sparse-page memory image
/// was the single largest allocation on the frame-fetch hot path.
///
/// # Panics
///
/// Panics if the frame contains invalidated slots (call
/// [`OptFrame::compact`] first) or a malformed uop.
pub fn probe_frame(frame: &OptFrame, m: &MachineState, scratch: &mut ExecScratch) -> ProbeOutcome {
    scratch.reset(frame.len());
    let ExecScratch {
        values,
        flag_results,
        store_buffer,
        transactions,
    } = scratch;

    fn read(m: &MachineState, values: &[u32], src: Option<Src>) -> u32 {
        match src {
            Some(Src::LiveIn(r)) => m.reg(r),
            Some(Src::Slot(s)) => values[s as usize],
            None => 0,
        }
    }
    fn read_flags(m: &MachineState, flag_results: &[Flags], fs: FlagsSrc) -> Flags {
        match fs {
            FlagsSrc::LiveIn => m.flags(),
            FlagsSrc::Slot(s) => flag_results[s as usize],
        }
    }

    for (i, u) in frame.iter() {
        assert!(u.valid, "execute requires a compacted frame");
        let i_us = i as usize;
        match u.op {
            Opcode::Load => {
                let base = read(m, values, u.src_a);
                let index = read(m, values, u.src_b);
                let addr = base
                    .wrapping_add(index.wrapping_mul(u.scale as u32))
                    .wrapping_add(u.imm as u32);
                let value = match store_buffer.get(&addr) {
                    Some(&v) => v,
                    None => m.load32(addr),
                };
                values[i_us] = value;
                transactions.push(MemTransaction {
                    uop_index: i_us,
                    addr,
                    value,
                    is_store: false,
                });
            }
            Opcode::Store => {
                let base = read(m, values, u.src_a);
                let addr = base.wrapping_add(u.imm as u32);
                let value = read(m, values, u.src_b);
                if u.unsafe_store {
                    // Compare against all earlier transactions in the frame
                    // (§3.4); any match means the speculation was wrong.
                    if let Some(t) = transactions.iter().find(|t| t.addr == addr) {
                        return ProbeOutcome::UnsafeConflict {
                            uop_index: i_us,
                            conflicts_with: t.uop_index,
                        };
                    }
                }
                store_buffer.insert(addr, value);
                transactions.push(MemTransaction {
                    uop_index: i_us,
                    addr,
                    value,
                    is_store: true,
                });
            }
            Opcode::Assert => {
                let cc = u.cc.expect("assert carries cc");
                let fs = u.flags_src.expect("assert reads flags");
                if !cc.holds(read_flags(m, flag_results, fs)) {
                    return ProbeOutcome::AssertFired { uop_index: i_us };
                }
            }
            Opcode::AssertCmp | Opcode::AssertTest => {
                let cc = u.cc.expect("assert carries cc");
                let a = read(m, values, u.src_a);
                let b = match u.src_b {
                    Some(_) => read(m, values, u.src_b),
                    None => u.imm as u32,
                };
                let alu = if u.op == Opcode::AssertCmp {
                    Opcode::Cmp
                } else {
                    Opcode::Test
                };
                let flags = eval_alu(alu, a, b).expect("cmp/test never fault").flags;
                if !cc.holds(flags) {
                    return ProbeOutcome::AssertFired { uop_index: i_us };
                }
            }
            Opcode::Br | Opcode::Jmp | Opcode::JmpInd => {
                // The frame's unique exit (or a residual direct jump): no
                // register/memory effect at the uop level.
            }
            Opcode::Nop | Opcode::Fence => {}
            op if op.is_alu() => {
                let a = read(m, values, u.src_a);
                let b = if op == Opcode::Lea {
                    let index = read(m, values, u.src_b);
                    index
                        .wrapping_mul(u.scale as u32)
                        .wrapping_add(u.imm as u32)
                } else {
                    match u.src_b {
                        Some(_) => read(m, values, u.src_b),
                        None => u.imm as u32,
                    }
                };
                // Shifts carry a flags dependency (set at rename time)
                // unless the count is a literal 1: a zero masked count
                // passes every previous flag through unchanged, and a
                // multi-bit count carries the previous OF through.
                let prev = match u.flags_src {
                    Some(fs) => read_flags(m, flag_results, fs),
                    None => Flags::CLEAR,
                };
                match eval_alu_with_flags(op, a, b, prev) {
                    Ok(r) => {
                        values[i_us] = r.value;
                        if u.writes_flags {
                            flag_results[i_us] = r.flags;
                        }
                    }
                    Err(_) => return ProbeOutcome::Faulted { uop_index: i_us },
                }
            }
            op => unreachable!("unexpected opcode {op} in frame"),
        }
    }

    ProbeOutcome::Completed
}

/// Applies a successfully probed frame's effects to `m`: stores, then
/// live-out registers, then flags. `scratch` must hold the result of
/// [`probe_frame`] returning [`ProbeOutcome::Completed`] for this exact
/// frame and state.
fn commit_frame(frame: &OptFrame, m: &mut MachineState, scratch: &ExecScratch) {
    for t in &scratch.transactions {
        if t.is_store {
            m.store32(t.addr, t.value);
        }
    }
    let commits: Vec<(replay_uop::ArchReg, u32)> = frame
        .live_out()
        .iter()
        .map(|&(r, src)| {
            let v = match src {
                Src::LiveIn(other) => m.reg(other),
                Src::Slot(s) => scratch.values[s as usize],
            };
            (r, v)
        })
        .collect();
    for (r, v) in commits {
        m.set_reg(r, v);
    }
    let out_flags = match frame.flags_out() {
        FlagsSrc::LiveIn => m.flags(),
        FlagsSrc::Slot(s) => scratch.flag_results[s as usize],
    };
    m.set_flags(out_flags);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{optimize, AliasProfile, OptConfig};
    use replay_frame::{Frame, FrameId};
    use replay_uop::{ArchReg, Cond, Uop};

    fn mk_frame(uops: Vec<Uop>) -> Frame {
        let n = uops.len();
        Frame {
            id: FrameId(0),
            start_addr: 0,
            uops,
            x86_addrs: vec![0],
            block_starts: vec![0],
            expectations: vec![],
            exit_next: 0,
            orig_uop_count: n,
        }
    }

    fn raw(frame: &Frame) -> OptFrame {
        let mut f = OptFrame::from_frame(frame);
        f.compact();
        f
    }

    #[test]
    fn completes_and_commits() {
        let frame = mk_frame(vec![
            Uop::alu_imm(Opcode::Add, ArchReg::Eax, ArchReg::Eax, 5),
            Uop::store(ArchReg::Esp, -4, ArchReg::Eax),
        ]);
        let f = raw(&frame);
        let mut m = MachineState::new();
        m.set_reg(ArchReg::Eax, 37);
        m.set_reg(ArchReg::Esp, 0x1000);
        let out = exec_frame(&f, &mut m);
        assert!(matches!(out, FrameOutcome::Completed { .. }));
        assert_eq!(m.reg(ArchReg::Eax), 42);
        assert_eq!(m.load32(0xffc), 42);
    }

    #[test]
    fn assert_fire_rolls_back() {
        let frame = mk_frame(vec![
            Uop::mov_imm(ArchReg::Eax, 1),
            Uop::store(ArchReg::Esp, 0, ArchReg::Eax),
            Uop::cmp_imm(ArchReg::Ebx, 7),
            Uop::assert_cc(Cond::Eq),
        ]);
        let f = raw(&frame);
        let mut m = MachineState::new();
        m.set_reg(ArchReg::Esp, 0x1000);
        m.set_reg(ArchReg::Ebx, 8); // assert will fire
        m.set_reg(ArchReg::Eax, 99);
        let out = exec_frame(&f, &mut m);
        assert_eq!(out, FrameOutcome::AssertFired { uop_index: 3 });
        assert_eq!(m.reg(ArchReg::Eax), 99, "no register commit");
        assert_eq!(m.load32(0x1000), 0, "no memory commit");
    }

    #[test]
    fn loads_see_frame_stores() {
        let frame = mk_frame(vec![
            Uop::store(ArchReg::Esp, 0, ArchReg::Ebp),
            Uop::load(ArchReg::Eax, ArchReg::Esp, 0),
        ]);
        let f = raw(&frame);
        let mut m = MachineState::new();
        m.set_reg(ArchReg::Esp, 0x2000);
        m.set_reg(ArchReg::Ebp, 1234);
        m.store32(0x2000, 5678); // stale memory value
        let out = exec_frame(&f, &mut m);
        assert!(matches!(out, FrameOutcome::Completed { .. }));
        assert_eq!(m.reg(ArchReg::Eax), 1234, "store buffer bypass");
    }

    #[test]
    fn unsafe_conflict_aborts() {
        // Frame with an unsafe store that dynamically aliases the earlier
        // transaction: [ESP-4] then [EDI] with EDI == ESP-4.
        let frame = mk_frame(vec![
            Uop::store(ArchReg::Esp, -4, ArchReg::Ebp).at(1),
            Uop::store(ArchReg::Edi, 0, ArchReg::Ebx).at(2),
            Uop::load(ArchReg::Ecx, ArchReg::Esp, -4).at(3),
        ]);
        let (f, stats) = optimize(&frame, &AliasProfile::empty(), &OptConfig::default());
        assert_eq!(stats.store_forwards, 1);
        assert_eq!(stats.unsafe_stores, 1);

        let mut m = MachineState::new();
        m.set_reg(ArchReg::Esp, 0x1000);
        m.set_reg(ArchReg::Edi, 0x1000 - 4); // aliases!
        m.set_reg(ArchReg::Ebp, 7);
        m.set_reg(ArchReg::Ebx, 9);
        let out = exec_frame(&f, &mut m);
        assert!(
            matches!(out, FrameOutcome::UnsafeConflict { .. }),
            "got {out:?}"
        );
        assert_eq!(m.load32(0xffc), 0, "aborted frame commits nothing");

        // Same frame with a non-aliasing EDI completes, and the forwarded
        // ECX equals EBP even though the load was removed.
        let mut m = MachineState::new();
        m.set_reg(ArchReg::Esp, 0x1000);
        m.set_reg(ArchReg::Edi, 0x8000);
        m.set_reg(ArchReg::Ebp, 7);
        m.set_reg(ArchReg::Ebx, 9);
        let out = exec_frame(&f, &mut m);
        assert!(matches!(out, FrameOutcome::Completed { .. }));
        assert_eq!(m.reg(ArchReg::Ecx), 7);
        assert_eq!(m.load32(0x8000), 9);
    }

    #[test]
    fn fault_aborts() {
        let frame = mk_frame(vec![Uop::alu(
            Opcode::Div,
            ArchReg::Eax,
            ArchReg::Eax,
            ArchReg::Ebx,
        )]);
        let f = raw(&frame);
        let mut m = MachineState::new();
        m.set_reg(ArchReg::Eax, 10);
        let out = exec_frame(&f, &mut m);
        assert_eq!(out, FrameOutcome::Faulted { uop_index: 0 });
    }

    #[test]
    fn optimized_and_raw_frames_agree() {
        // The paper's state-verifier property, in miniature: optimizing a
        // frame must not change its architectural effect.
        let frame = mk_frame(vec![
            Uop::store(ArchReg::Esp, -4, ArchReg::Ebp),
            Uop::lea(ArchReg::Esp, ArchReg::Esp, None, 1, -4),
            Uop::store(ArchReg::Esp, -4, ArchReg::Ebx),
            Uop::lea(ArchReg::Esp, ArchReg::Esp, None, 1, -4),
            Uop::load(ArchReg::Ecx, ArchReg::Esp, 4),
            Uop::alu(Opcode::Xor, ArchReg::Eax, ArchReg::Eax, ArchReg::Eax),
            Uop::load(ArchReg::Edx, ArchReg::Esp, 0),
        ]);
        let seed = |m: &mut MachineState| {
            m.set_reg(ArchReg::Esp, 0x9000);
            m.set_reg(ArchReg::Ebp, 0x11);
            m.set_reg(ArchReg::Ebx, 0x22);
            m.set_reg(ArchReg::Eax, 0x33);
        };
        let mut m1 = MachineState::new();
        seed(&mut m1);
        exec_frame(&raw(&frame), &mut m1);

        let (opt, stats) = optimize(&frame, &AliasProfile::empty(), &OptConfig::default());
        assert!(stats.removed_uops() > 0);
        let mut m2 = MachineState::new();
        seed(&mut m2);
        exec_frame(&opt, &mut m2);

        for r in ArchReg::GPRS {
            assert_eq!(m1.reg(r), m2.reg(r), "{r} differs");
        }
        assert_eq!(m1.load32(0x9000 - 4), m2.load32(0x9000 - 4));
        assert_eq!(m1.load32(0x9000 - 8), m2.load32(0x9000 - 8));
    }
}
