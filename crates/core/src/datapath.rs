//! The optimizer datapath latency model (§4, §5.1.4).
//!
//! The paper models the optimization engine abstractly: each frame is
//! optimized with a variable latency of **10 cycles per uop**, and the
//! optimizer is **pipelined with depth 3**, which simulation shows is
//! sufficient to sustain the frame constructor's throughput. This module
//! reproduces that model: frames enter a small pipeline; a frame's service
//! time is `cycles_per_uop × frame_size`, new frames may issue one stage
//! interval (service / depth) after the previous one, and a frame only
//! becomes visible to the frame cache when it leaves the pipeline.

/// Configuration of the optimizer datapath model.
#[derive(Debug, Clone, Copy)]
pub struct DatapathConfig {
    /// Optimization latency per uop (paper: 10 cycles).
    pub cycles_per_uop: u64,
    /// Pipeline depth: how many frames can be in flight (paper: 3).
    pub pipeline_depth: usize,
    /// Backlog capacity; frames arriving when this many frames are waiting
    /// to start are dropped (the paper's alternative to stalling the
    /// constructor).
    pub queue_capacity: usize,
}

impl Default for DatapathConfig {
    fn default() -> DatapathConfig {
        DatapathConfig {
            cycles_per_uop: 10,
            pipeline_depth: 3,
            queue_capacity: 4,
        }
    }
}

#[derive(Debug, Clone)]
struct InFlight<T> {
    payload: T,
    start_at: u64,
    done_at: u64,
}

/// A latency/throughput model of the pipelined optimization engine.
///
/// Generic over the payload so the simulator can push optimized frames (the
/// optimization result is computed instantly in software; the datapath
/// models *when* it becomes architecturally visible).
#[derive(Debug)]
pub struct OptimizerDatapath<T> {
    cfg: DatapathConfig,
    stage_free: Vec<u64>,
    issue_free: u64,
    in_flight: Vec<InFlight<T>>,
    dropped: u64,
    processed: u64,
}

impl<T> OptimizerDatapath<T> {
    /// Creates an idle datapath.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline depth is zero.
    pub fn new(cfg: DatapathConfig) -> OptimizerDatapath<T> {
        assert!(cfg.pipeline_depth > 0, "pipeline depth must be positive");
        OptimizerDatapath {
            stage_free: vec![0; cfg.pipeline_depth],
            issue_free: 0,
            in_flight: Vec::new(),
            dropped: 0,
            processed: 0,
            cfg,
        }
    }

    /// Offers a frame of `uop_count` uops to the optimizer at time `now`.
    /// Returns `false` if the backlog was full and the frame was dropped.
    pub fn offer(&mut self, payload: T, uop_count: usize, now: u64) -> bool {
        let waiting = self.in_flight.iter().filter(|f| f.start_at > now).count();
        if waiting >= self.cfg.queue_capacity {
            self.dropped += 1;
            return false;
        }
        let stage = self
            .stage_free
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .map(|(i, _)| i)
            .expect("at least one stage");
        let service = self.cfg.cycles_per_uop * uop_count.max(1) as u64;
        let start_at = now.max(self.stage_free[stage]).max(self.issue_free);
        let done_at = start_at + service;
        self.stage_free[stage] = done_at;
        self.issue_free = start_at + service / self.cfg.pipeline_depth as u64;
        self.in_flight.push(InFlight {
            payload,
            start_at,
            done_at,
        });
        true
    }

    /// Retrieves all frames whose optimization completes by time `now`, in
    /// completion order.
    pub fn take_completed(&mut self, now: u64) -> Vec<T> {
        let mut done: Vec<InFlight<T>> = Vec::new();
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].done_at <= now {
                done.push(self.in_flight.remove(i));
                self.processed += 1;
            } else {
                i += 1;
            }
        }
        done.sort_by_key(|f| f.done_at);
        done.into_iter().map(|f| f.payload).collect()
    }

    /// Number of frames accepted but not yet retrieved.
    pub fn occupancy(&self) -> usize {
        self.in_flight.len()
    }

    /// Frames dropped due to a full backlog.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Frames that completed optimization and were retrieved.
    pub fn processed(&self) -> u64 {
        self.processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dp() -> OptimizerDatapath<u32> {
        OptimizerDatapath::new(DatapathConfig::default())
    }

    #[test]
    fn latency_is_ten_cycles_per_uop() {
        let mut d = dp();
        assert!(d.offer(1, 32, 0));
        // 32 uops * 10 cycles = 320 cycles.
        assert!(d.take_completed(319).is_empty());
        assert_eq!(d.take_completed(320), vec![1]);
        assert_eq!(d.processed(), 1);
    }

    #[test]
    fn pipelining_overlaps_frames() {
        let mut d = dp();
        assert!(d.offer(1, 30, 0)); // starts 0, done 300
        assert!(d.offer(2, 30, 0)); // issues at 100, done 400
        assert!(d.offer(3, 30, 0)); // issues at 200, done 500
        assert_eq!(d.take_completed(300), vec![1]);
        assert_eq!(d.take_completed(400), vec![2]);
        assert_eq!(d.take_completed(500), vec![3]);
    }

    #[test]
    fn queue_overflow_drops() {
        let cfg = DatapathConfig {
            cycles_per_uop: 10,
            pipeline_depth: 1,
            queue_capacity: 1,
        };
        let mut d: OptimizerDatapath<u32> = OptimizerDatapath::new(cfg);
        assert!(d.offer(1, 100, 0)); // in service until 1000
        assert!(d.offer(2, 100, 0)); // backlogged (starts at 1000)
        assert!(!d.offer(3, 100, 0), "backlog full: dropped");
        assert_eq!(d.dropped(), 1);
        assert_eq!(d.occupancy(), 2);
    }

    #[test]
    fn queued_frames_start_after_pipeline_frees() {
        let cfg = DatapathConfig {
            cycles_per_uop: 10,
            pipeline_depth: 1,
            queue_capacity: 8,
        };
        let mut d: OptimizerDatapath<u32> = OptimizerDatapath::new(cfg);
        d.offer(1, 10, 0); // done at 100
        d.offer(2, 10, 0); // starts at 100, done at 200
        assert_eq!(d.take_completed(100), vec![1]);
        assert!(d.take_completed(150).is_empty());
        assert_eq!(d.take_completed(200), vec![2]);
    }

    #[test]
    fn completion_order_is_by_time() {
        let mut d = dp();
        d.offer(1, 100, 0); // done at 1000
        d.offer(2, 10, 0); // issues ~333, done ~433
        let out = d.take_completed(10_000);
        assert_eq!(out, vec![2, 1]);
    }

    #[test]
    #[should_panic(expected = "pipeline depth")]
    fn zero_depth_rejected() {
        let cfg = DatapathConfig {
            cycles_per_uop: 10,
            pipeline_depth: 0,
            queue_capacity: 1,
        };
        let _: OptimizerDatapath<u32> = OptimizerDatapath::new(cfg);
    }
}
