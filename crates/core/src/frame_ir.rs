//! The optimization buffer: a frame in renamed, slot-indexed form.

use crate::ir::{FlagsSrc, Operand, OptUop, Slot, Src};
use replay_frame::{ControlExpectation, Frame, FrameId};
use replay_uop::{ArchReg, Opcode, RegSet};

/// A frame in the optimizer's renamed representation (§4 of the paper).
///
/// Remapping assigns the uop at buffer slot *m* the physical destination
/// register *m*; no physical register is written twice. Consequently:
///
/// * retrieving the *parent* that produced an operand is an array index
///   (the hardware's Parent Logic),
/// * *children* are found by scanning operand references (the hardware's
///   Dependency List), and
/// * removal is a `valid`-bit clear followed by [`OptFrame::compact`]
///   (the hardware's Cleanup Logic).
///
/// The structure maintains exact use counts for every slot's value and
/// flags results; all mutation goes through methods that keep the counts
/// consistent.
#[derive(Debug, Clone)]
pub struct OptFrame {
    /// Frame identity (inherited from construction).
    pub id: FrameId,
    /// x86 entry address.
    pub start_addr: u32,
    /// Address execution continues at after a clean frame completion.
    pub exit_next: u32,
    /// Addresses of the covered x86 instructions, in path order.
    pub x86_addrs: Vec<u32>,
    /// Uop count at construction time (before any optimization).
    pub orig_uop_count: usize,
    /// Load count at construction time.
    pub orig_load_count: usize,
    pub(crate) slots: Vec<OptUop>,
    pub(crate) block_of: Vec<u16>,
    pub(crate) value_uses: Vec<u32>,
    pub(crate) flags_uses: Vec<u32>,
    pub(crate) live_out: Vec<(ArchReg, Src)>,
    pub(crate) flags_out: FlagsSrc,
    pub(crate) expectations: Vec<ControlExpectation>,
    pub(crate) spec_loads_removed: u32,
}

impl OptFrame {
    /// Remaps an architectural-register frame into slot-indexed form.
    ///
    /// This is the paper's Remapper: each uop's sources are resolved to
    /// their producer slot (or to a live-in), and its destination becomes
    /// its own slot index. The frame's live-outs are the last writers of
    /// each general-purpose register; uop-level temporaries are dead at
    /// frame exit by construction.
    ///
    /// # Panics
    ///
    /// Panics if the frame holds more than `Slot::MAX` uops.
    pub fn from_frame(frame: &Frame) -> OptFrame {
        assert!(
            frame.uops.len() <= Slot::MAX as usize,
            "frame exceeds optimization buffer"
        );
        let mut rename: [Src; replay_uop::NUM_ARCH_REGS] =
            std::array::from_fn(|i| Src::LiveIn(ArchReg::from_index(i).expect("index in range")));
        let mut flags = FlagsSrc::LiveIn;
        let mut slots = Vec::with_capacity(frame.uops.len());
        let mut block_of = Vec::with_capacity(frame.uops.len());

        for (i, u) in frame.uops.iter().enumerate() {
            let lookup = |r: Option<ArchReg>| r.map(|r| rename[r.index()]);
            // Shifts preserve prior flag state in two cases and are then
            // flags *readers* as well as writers: a masked count of zero
            // passes every flag through (x86 no-op semantics), and a
            // masked count greater than one carries the prior OF through
            // (architecturally undefined, modeled as preserved). Only an
            // immediate count that masks to exactly 1 fully defines the
            // output flags from the operands alone.
            let shift_may_preserve = u.writes_flags
                && matches!(u.op, Opcode::Shl | Opcode::Shr | Opcode::Sar)
                && (u.src_b.is_some() || (u.imm as u32) & 31 != 1);
            let reads_flags = matches!(u.op, Opcode::Br | Opcode::Assert) || shift_may_preserve;
            let opt = OptUop {
                op: u.op,
                src_a: lookup(u.src_a),
                src_b: lookup(u.src_b),
                imm: u.imm,
                scale: u.scale,
                cc: u.cc,
                dst_arch: u.dst,
                writes_flags: u.writes_flags,
                flags_src: reads_flags.then_some(flags),
                target: u.target,
                x86_addr: u.x86_addr,
                valid: true,
                unsafe_store: false,
            };
            if let Some(d) = u.dst {
                rename[d.index()] = Src::Slot(i as Slot);
            }
            if u.writes_flags {
                flags = FlagsSrc::Slot(i as Slot);
            }
            slots.push(opt);
            block_of.push(frame.block_of(i) as u16);
        }

        let live_out: Vec<(ArchReg, Src)> = ArchReg::GPRS
            .iter()
            .map(|&r| (r, rename[r.index()]))
            .collect();

        let orig_load_count = slots.iter().filter(|u| u.is_load()).count();
        let mut f = OptFrame {
            id: frame.id,
            start_addr: frame.start_addr,
            exit_next: frame.exit_next,
            x86_addrs: frame.x86_addrs.clone(),
            orig_uop_count: frame.orig_uop_count,
            orig_load_count,
            slots,
            block_of,
            value_uses: Vec::new(),
            flags_uses: Vec::new(),
            live_out,
            flags_out: flags,
            expectations: frame.expectations.clone(),
            spec_loads_removed: 0,
        };
        f.rebuild_use_counts();
        f
    }

    pub(crate) fn rebuild_use_counts(&mut self) {
        self.value_uses = vec![0; self.slots.len()];
        self.flags_uses = vec![0; self.slots.len()];
        for u in &self.slots {
            if !u.valid {
                continue;
            }
            for src in [u.src_a, u.src_b].into_iter().flatten() {
                if let Src::Slot(s) = src {
                    self.value_uses[s as usize] += 1;
                }
            }
            if let Some(FlagsSrc::Slot(s)) = u.flags_src {
                self.flags_uses[s as usize] += 1;
            }
        }
        for &(_, src) in &self.live_out {
            if let Src::Slot(s) = src {
                self.value_uses[s as usize] += 1;
            }
        }
        if let FlagsSrc::Slot(s) = self.flags_out {
            self.flags_uses[s as usize] += 1;
        }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Total slots in the buffer (including invalidated ones).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if the buffer holds no slots at all.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of valid (not removed) uops.
    pub fn uop_count(&self) -> usize {
        self.slots.iter().filter(|u| u.valid).count()
    }

    /// Number of valid load uops.
    pub fn load_count(&self) -> usize {
        self.slots.iter().filter(|u| u.valid && u.is_load()).count()
    }

    /// Number of x86 instructions the frame covers.
    pub fn x86_count(&self) -> usize {
        self.x86_addrs.len()
    }

    /// The uop at a slot.
    pub fn slot(&self, s: Slot) -> &OptUop {
        &self.slots[s as usize]
    }

    /// All slots with their indices (valid and invalid).
    pub fn iter(&self) -> impl Iterator<Item = (Slot, &OptUop)> {
        self.slots.iter().enumerate().map(|(i, u)| (i as Slot, u))
    }

    /// Valid slots with their indices, in program order.
    pub fn iter_valid(&self) -> impl Iterator<Item = (Slot, &OptUop)> {
        self.iter().filter(|(_, u)| u.valid)
    }

    /// How many valid operand references read slot `s`'s value (including
    /// live-out references).
    pub fn value_uses(&self, s: Slot) -> u32 {
        self.value_uses[s as usize]
    }

    /// How many valid uops (or the frame's flags-out) read slot `s`'s flags.
    pub fn flags_uses(&self, s: Slot) -> u32 {
        self.flags_uses[s as usize]
    }

    /// The basic-block index of a slot.
    pub fn block_of(&self, s: Slot) -> u16 {
        self.block_of[s as usize]
    }

    /// Number of basic blocks in the frame.
    pub fn block_count(&self) -> usize {
        self.block_of.last().map_or(0, |&b| b as usize + 1)
    }

    /// The frame's architectural live-out bindings (each GPR's value source
    /// at frame exit).
    pub fn live_out(&self) -> &[(ArchReg, Src)] {
        &self.live_out
    }

    /// The frame's flags binding at exit.
    pub fn flags_out(&self) -> FlagsSrc {
        self.flags_out
    }

    /// The control expectations (assert slots) of the frame.
    pub fn expectations(&self) -> &[ControlExpectation] {
        &self.expectations
    }

    /// The set of architectural registers the frame reads as live-ins.
    pub fn live_in_regs(&self) -> RegSet {
        let mut set = RegSet::new();
        for u in self.slots.iter().filter(|u| u.valid) {
            for src in [u.src_a, u.src_b].into_iter().flatten() {
                if let Src::LiveIn(r) = src {
                    set.insert(r);
                }
            }
        }
        for &(r, src) in &self.live_out {
            if src == Src::LiveIn(r) {
                // Identity pass-through: not a read.
                continue;
            }
            if let Src::LiveIn(other) = src {
                set.insert(other);
            }
        }
        set
    }

    /// Finds the valid uops that consume slot `s`'s value, with the operand
    /// position of each use (the hardware's Next-Child iteration).
    pub fn value_users(&self, s: Slot) -> Vec<(Slot, Operand)> {
        let mut out = Vec::new();
        for (i, u) in self.iter_valid() {
            if u.src_a == Some(Src::Slot(s)) {
                out.push((i, Operand::A));
            }
            if u.src_b == Some(Src::Slot(s)) {
                out.push((i, Operand::B));
            }
        }
        out
    }

    /// Loads removed speculatively (across may-alias stores) so far.
    pub fn spec_loads_removed(&self) -> u32 {
        self.spec_loads_removed
    }

    /// Number of valid unsafe stores.
    pub fn unsafe_store_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|u| u.valid && u.unsafe_store)
            .count()
    }

    // ------------------------------------------------------------------
    // Mutation (all maintain use counts)
    // ------------------------------------------------------------------

    fn retain_src(&mut self, src: Option<Src>) {
        if let Some(Src::Slot(s)) = src {
            self.value_uses[s as usize] += 1;
        }
    }

    fn release_src(&mut self, src: Option<Src>) {
        if let Some(Src::Slot(s)) = src {
            debug_assert!(self.value_uses[s as usize] > 0, "use-count underflow");
            self.value_uses[s as usize] -= 1;
        }
    }

    /// Rewrites one operand of a uop.
    pub fn rewrite_operand(&mut self, slot: Slot, which: Operand, new: Option<Src>) {
        let old = self.slots[slot as usize].operand(which);
        self.release_src(old);
        self.retain_src(new);
        self.slots[slot as usize].set_operand(which, new);
    }

    /// Rewrites one operand and the immediate together (reassociation).
    pub fn rewrite_operand_imm(&mut self, slot: Slot, which: Operand, new: Option<Src>, imm: i32) {
        self.rewrite_operand(slot, which, new);
        self.slots[slot as usize].imm = imm;
    }

    /// Rewrites a uop's flags dependency.
    pub fn rewrite_flags_src(&mut self, slot: Slot, new: Option<FlagsSrc>) {
        if let Some(FlagsSrc::Slot(s)) = self.slots[slot as usize].flags_src {
            debug_assert!(self.flags_uses[s as usize] > 0, "flags-use underflow");
            self.flags_uses[s as usize] -= 1;
        }
        if let Some(FlagsSrc::Slot(s)) = new {
            self.flags_uses[s as usize] += 1;
        }
        self.slots[slot as usize].flags_src = new;
    }

    /// Redirects every value use of slot `from` (operands and live-outs) to
    /// `to`. Returns the number of rewritten references.
    pub fn redirect_value_uses(&mut self, from: Slot, to: Src) -> usize {
        let mut rewritten = 0;
        for i in 0..self.slots.len() {
            if !self.slots[i].valid {
                continue;
            }
            for which in [Operand::A, Operand::B] {
                if self.slots[i].operand(which) == Some(Src::Slot(from)) {
                    self.rewrite_operand(i as Slot, which, Some(to));
                    rewritten += 1;
                }
            }
        }
        for idx in 0..self.live_out.len() {
            if self.live_out[idx].1 == Src::Slot(from) {
                self.live_out[idx].1 = to;
                self.value_uses[from as usize] -= 1;
                if let Src::Slot(s) = to {
                    self.value_uses[s as usize] += 1;
                }
                rewritten += 1;
            }
        }
        rewritten
    }

    /// Invalidates (removes) a uop, releasing its input references.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the slot's value or flags results still
    /// have consumers — callers must redirect uses first.
    pub fn invalidate(&mut self, slot: Slot) {
        let i = slot as usize;
        debug_assert!(self.slots[i].valid, "double invalidation of slot {slot}");
        debug_assert_eq!(self.value_uses[i], 0, "slot {slot} value still used");
        debug_assert!(
            !self.slots[i].writes_flags || self.flags_uses[i] == 0,
            "slot {slot} flags still used"
        );
        let (a, b, fs) = {
            let u = &self.slots[i];
            (u.src_a, u.src_b, u.flags_src)
        };
        self.release_src(a);
        self.release_src(b);
        if let Some(FlagsSrc::Slot(s)) = fs {
            self.flags_uses[s as usize] -= 1;
        }
        let u = &mut self.slots[i];
        u.valid = false;
        u.src_a = None;
        u.src_b = None;
        u.flags_src = None;
        // Track removed speculative/ordinary loads for Table 3 statistics.
        if u.is_load() {
            // nothing extra: load_count() recomputes from valid bits
        }
    }

    /// Replaces a uop with `MovImm value`, releasing its old inputs. The
    /// architectural destination is preserved. Used by constant propagation.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the uop's flags result is still consumed
    /// (folding would lose the flags).
    pub fn replace_with_const(&mut self, slot: Slot, value: i32) {
        let i = slot as usize;
        debug_assert!(
            !self.slots[i].writes_flags || self.flags_uses[i] == 0,
            "cannot fold a uop whose flags are consumed"
        );
        let (a, b, fs) = {
            let u = &self.slots[i];
            (u.src_a, u.src_b, u.flags_src)
        };
        self.release_src(a);
        self.release_src(b);
        if let Some(FlagsSrc::Slot(s)) = fs {
            self.flags_uses[s as usize] -= 1;
        }
        let u = &mut self.slots[i];
        u.op = Opcode::MovImm;
        u.src_a = None;
        u.src_b = None;
        u.flags_src = None;
        u.imm = value;
        u.scale = 1;
        u.writes_flags = false;
        u.cc = None;
    }

    /// Fuses an `Assert` with the `Cmp`/`Test` producing its flags into a
    /// single `AssertCmp`/`AssertTest` uop (the value-assertion
    /// optimization). The compare uop itself is left in place for dead-code
    /// elimination to collect if nothing else consumes its flags.
    ///
    /// # Panics
    ///
    /// Panics if `assert_slot` is not an `Assert` or `cmp_slot` is not a
    /// `Cmp`/`Test`.
    pub fn fuse_assert(&mut self, assert_slot: Slot, cmp_slot: Slot) {
        let cmp = self.slots[cmp_slot as usize].clone();
        assert!(
            matches!(cmp.op, Opcode::Cmp | Opcode::Test),
            "fusion source must be Cmp/Test"
        );
        assert_eq!(
            self.slots[assert_slot as usize].op,
            Opcode::Assert,
            "fusion target must be Assert"
        );
        // Stop reading the compare's flags; start reading its operands.
        self.rewrite_flags_src(assert_slot, None);
        self.retain_src(cmp.src_a);
        self.retain_src(cmp.src_b);
        let u = &mut self.slots[assert_slot as usize];
        u.op = if cmp.op == Opcode::Cmp {
            Opcode::AssertCmp
        } else {
            Opcode::AssertTest
        };
        u.src_a = cmp.src_a;
        u.src_b = cmp.src_b;
        u.imm = cmp.imm;
    }

    /// Marks a store as unsafe (speculative memory optimization, §3.4).
    pub fn mark_unsafe_store(&mut self, slot: Slot) {
        debug_assert!(self.slots[slot as usize].is_store());
        self.slots[slot as usize].unsafe_store = true;
    }

    /// Records that a load was removed speculatively (for statistics).
    pub fn note_speculative_removal(&mut self) {
        self.spec_loads_removed += 1;
    }

    /// Removes the control expectation anchored at `slot` (used when
    /// constant propagation proves an assertion can never fire).
    pub fn remove_expectation_at(&mut self, slot: Slot) {
        self.expectations.retain(|e| e.uop_index != slot as usize);
    }

    /// Compacts the buffer: drops invalidated slots, renumbers the
    /// survivors, and rewrites every slot reference (operands, flags,
    /// live-outs, expectations, block map). This is the Cleanup Logic of
    /// the optimizer datapath.
    pub fn compact(&mut self) {
        let mut new_index = vec![None::<Slot>; self.slots.len()];
        let mut next = 0 as Slot;
        for (i, u) in self.slots.iter().enumerate() {
            if u.valid {
                new_index[i] = Some(next);
                next += 1;
            }
        }
        let remap_src = |src: Option<Src>| -> Option<Src> {
            src.map(|s| match s {
                Src::Slot(old) => {
                    Src::Slot(new_index[old as usize].expect("reference to removed slot"))
                }
                live_in => live_in,
            })
        };

        let mut slots = Vec::with_capacity(next as usize);
        let mut block_of = Vec::with_capacity(next as usize);
        for (i, mut u) in std::mem::take(&mut self.slots).into_iter().enumerate() {
            if !u.valid {
                continue;
            }
            u.src_a = remap_src(u.src_a);
            u.src_b = remap_src(u.src_b);
            u.flags_src = u.flags_src.map(|fs| match fs {
                FlagsSrc::Slot(old) => {
                    FlagsSrc::Slot(new_index[old as usize].expect("flags ref to removed slot"))
                }
                FlagsSrc::LiveIn => FlagsSrc::LiveIn,
            });
            slots.push(u);
            block_of.push(self.block_of[i]);
        }
        self.slots = slots;
        self.block_of = block_of;

        for entry in &mut self.live_out {
            if let Src::Slot(old) = entry.1 {
                entry.1 = Src::Slot(new_index[old as usize].expect("live-out ref removed"));
            }
        }
        if let FlagsSrc::Slot(old) = self.flags_out {
            self.flags_out = FlagsSrc::Slot(new_index[old as usize].expect("flags-out removed"));
        }
        self.expectations.retain_mut(|e| {
            match new_index.get(e.uop_index).copied().flatten() {
                Some(n) => {
                    e.uop_index = n as usize;
                    true
                }
                // The assertion was proven redundant and removed.
                None => false,
            }
        });
        self.rebuild_use_counts();
    }

    /// Reorders the (compacted) buffer according to `order`, a permutation
    /// given as new-position → old-slot. All slot references (operands,
    /// flags, live-outs, expectations, block map) are rewritten. This is
    /// the Cleanup Logic's position-field readout (§4).
    ///
    /// # Panics
    ///
    /// Panics if the buffer has invalidated slots, `order` is not a
    /// permutation of `0..len`, or the new order would place a consumer
    /// before its producer.
    pub fn permute(&mut self, order: &[Slot]) {
        assert_eq!(order.len(), self.slots.len(), "order must cover the buffer");
        assert!(
            self.slots.iter().all(|u| u.valid),
            "permute requires compaction"
        );
        let mut new_index = vec![usize::MAX; self.slots.len()];
        for (pos, &old) in order.iter().enumerate() {
            assert_eq!(
                new_index[old as usize],
                usize::MAX,
                "order must be a permutation"
            );
            new_index[old as usize] = pos;
        }
        let remap_src = |src: Option<Src>| {
            src.map(|s| match s {
                Src::Slot(old) => Src::Slot(new_index[old as usize] as Slot),
                live_in => live_in,
            })
        };
        let old_slots = std::mem::take(&mut self.slots);
        let old_blocks = std::mem::take(&mut self.block_of);
        let mut slots = Vec::with_capacity(old_slots.len());
        let mut block_of = Vec::with_capacity(old_blocks.len());
        let mut by_old: Vec<Option<OptUop>> = old_slots.into_iter().map(Some).collect();
        for (pos, &old) in order.iter().enumerate() {
            let mut u = by_old[old as usize].take().expect("permutation");
            u.src_a = remap_src(u.src_a);
            u.src_b = remap_src(u.src_b);
            u.flags_src = u.flags_src.map(|fs| match fs {
                FlagsSrc::Slot(old) => FlagsSrc::Slot(new_index[old as usize] as Slot),
                FlagsSrc::LiveIn => FlagsSrc::LiveIn,
            });
            // Dataflow sanity: producers precede consumers.
            for src in [u.src_a, u.src_b].into_iter().flatten() {
                if let Src::Slot(p) = src {
                    assert!((p as usize) < pos, "consumer before producer");
                }
            }
            if let Some(FlagsSrc::Slot(p)) = u.flags_src {
                assert!((p as usize) < pos, "flags consumer before producer");
            }
            slots.push(u);
            block_of.push(old_blocks[old as usize]);
        }
        self.slots = slots;
        self.block_of = block_of;
        for entry in &mut self.live_out {
            if let Src::Slot(old) = entry.1 {
                entry.1 = Src::Slot(new_index[old as usize] as Slot);
            }
        }
        if let FlagsSrc::Slot(old) = self.flags_out {
            self.flags_out = FlagsSrc::Slot(new_index[old as usize] as Slot);
        }
        for e in &mut self.expectations {
            e.uop_index = new_index[e.uop_index];
        }
        self.rebuild_use_counts();
    }

    /// Checks the structure's internal invariants, returning a description
    /// of the first violation. Used by the property-test suites and useful
    /// when developing new passes.
    ///
    /// Invariants checked:
    /// * every operand/flags reference points at a valid *earlier* slot;
    /// * referenced producers actually produce the consumed result
    ///   (a value reference targets a slot with a destination; a flags
    ///   reference targets a flags writer);
    /// * use counts equal a fresh recount;
    /// * live-outs and expectations reference valid slots.
    pub fn validate(&self) -> Result<(), String> {
        for (i, u) in self.iter() {
            if !u.valid {
                continue;
            }
            for (which, src) in [("A", u.src_a), ("B", u.src_b)] {
                if let Some(Src::Slot(p)) = src {
                    let p_us = p as usize;
                    if p_us >= self.slots.len() {
                        return Err(format!("slot {i}: src{which} out of range"));
                    }
                    if p >= i {
                        return Err(format!("slot {i}: src{which} is not earlier ({p})"));
                    }
                    if !self.slots[p_us].valid {
                        return Err(format!("slot {i}: src{which} references removed slot {p}"));
                    }
                    if self.slots[p_us].dst_arch.is_none() {
                        return Err(format!(
                            "slot {i}: src{which} references slot {p} which has no value result"
                        ));
                    }
                }
            }
            if let Some(FlagsSrc::Slot(p)) = u.flags_src {
                if p >= i || !self.slots[p as usize].valid {
                    return Err(format!("slot {i}: bad flags reference {p}"));
                }
                if !self.slots[p as usize].writes_flags {
                    return Err(format!("slot {i}: flags ref {p} does not write flags"));
                }
            }
        }
        for &(r, src) in &self.live_out {
            if let Src::Slot(p) = src {
                let p = p as usize;
                if p >= self.slots.len() || !self.slots[p].valid {
                    return Err(format!("live-out {r} references bad slot {p}"));
                }
            }
        }
        if let FlagsSrc::Slot(p) = self.flags_out {
            if p as usize >= self.slots.len() || !self.slots[p as usize].valid {
                return Err(format!("flags-out references bad slot {p}"));
            }
        }
        for e in &self.expectations {
            match self.slots.get(e.uop_index) {
                Some(u) if u.valid && u.op.is_assert() => {}
                _ => {
                    return Err(format!(
                        "expectation at {} is not a live assert",
                        e.uop_index
                    ))
                }
            }
        }
        // Use-count audit.
        let mut clone = self.clone();
        clone.rebuild_use_counts();
        if clone.value_uses != self.value_uses {
            return Err("value use counts drifted".into());
        }
        if clone.flags_uses != self.flags_uses {
            return Err("flags use counts drifted".into());
        }
        Ok(())
    }

    /// Renders the buffer one slot per line for debugging.
    pub fn listing(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (i, u) in self.iter() {
            let _ = writeln!(s, "{i:3} [b{}] {u}", self.block_of(i));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use replay_uop::{Cond, Uop};

    /// Frame used in most tests, modeled on the paper's Figure 2 prologue:
    ///
    /// ```text
    /// 0: [ESP-4] <- EBP        (PUSH EBP store)
    /// 1: ESP <- ESP - 4        (PUSH EBP update)
    /// 2: [ESP-4] <- EBX        (PUSH EBX store)
    /// 3: ESP <- ESP - 4        (PUSH EBX update)
    /// 4: ECX <- [ESP + 0xC]
    /// 5: EAX <- 0
    /// 6: flags <- cmp EAX, 0
    /// 7: assert Z
    /// ```
    fn paper_frame() -> Frame {
        let mut cmp = Uop::cmp_imm(ArchReg::Eax, 0);
        cmp.x86_addr = 0x6;
        Frame {
            id: FrameId(7),
            start_addr: 0x1000,
            uops: vec![
                Uop::store(ArchReg::Esp, -4, ArchReg::Ebp),
                Uop::lea(ArchReg::Esp, ArchReg::Esp, None, 1, -4),
                Uop::store(ArchReg::Esp, -4, ArchReg::Ebx),
                Uop::lea(ArchReg::Esp, ArchReg::Esp, None, 1, -4),
                Uop::load(ArchReg::Ecx, ArchReg::Esp, 0xc),
                Uop::mov_imm(ArchReg::Eax, 0),
                cmp,
                Uop::assert_cc(Cond::Eq),
            ],
            x86_addrs: vec![0x1000, 0x1001, 0x1004, 0x1006],
            block_starts: vec![0, 7],
            expectations: vec![ControlExpectation {
                x86_addr: 0x1006,
                expected_next: 0x1010,
                uop_index: 7,
            }],
            exit_next: 0x1010,
            orig_uop_count: 8,
        }
    }

    #[test]
    fn remap_resolves_producers() {
        let f = OptFrame::from_frame(&paper_frame());
        // Slot 2's store base is slot 1 (first ESP update).
        assert_eq!(f.slot(2).src_a, Some(Src::Slot(1)));
        // Slot 0's base is the live-in ESP.
        assert_eq!(f.slot(0).src_a, Some(Src::LiveIn(ArchReg::Esp)));
        // The assert reads the Cmp's flags.
        assert_eq!(f.slot(7).flags_src, Some(FlagsSrc::Slot(6)));
        // Live-outs: ESP comes from slot 3, EAX from slot 5, ECX from 4.
        let lo: std::collections::HashMap<_, _> = f.live_out().iter().copied().collect();
        assert_eq!(lo[&ArchReg::Esp], Src::Slot(3));
        assert_eq!(lo[&ArchReg::Eax], Src::Slot(5));
        assert_eq!(lo[&ArchReg::Ecx], Src::Slot(4));
        assert_eq!(lo[&ArchReg::Edi], Src::LiveIn(ArchReg::Edi));
    }

    #[test]
    fn use_counts_track_consumers() {
        let f = OptFrame::from_frame(&paper_frame());
        // Slot 1 (ESP-4) is used by: slot 2 store base, slot 3 lea. Not
        // live-out (slot 3 supersedes).
        assert_eq!(f.value_uses(1), 2);
        // Slot 3 is used by slot 4 load base and ESP live-out.
        assert_eq!(f.value_uses(3), 2);
        // Cmp flags used twice: the assert, and the frame's flags-out
        // (the Cmp is the last flags writer).
        assert_eq!(f.flags_uses(6), 2);
        // Store produces nothing.
        assert_eq!(f.value_uses(0), 0);
    }

    #[test]
    fn live_in_regs_excludes_pass_through() {
        let f = OptFrame::from_frame(&paper_frame());
        let li = f.live_in_regs();
        assert!(li.contains(ArchReg::Esp));
        assert!(li.contains(ArchReg::Ebp));
        assert!(li.contains(ArchReg::Ebx));
        // EDI is only an identity live-out, not a read.
        assert!(!li.contains(ArchReg::Edi));
    }

    #[test]
    fn redirect_and_invalidate() {
        let mut f = OptFrame::from_frame(&paper_frame());
        // Redirect users of slot 1 to read ESP live-in (as reassociation
        // would, after folding the -4 into their displacements).
        let n = f.redirect_value_uses(1, Src::LiveIn(ArchReg::Esp));
        assert_eq!(n, 2);
        assert_eq!(f.value_uses(1), 0);
        f.invalidate(1);
        assert_eq!(f.uop_count(), 7);
        assert!(!f.slot(1).valid);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "value still used")]
    fn invalidate_with_users_panics() {
        let mut f = OptFrame::from_frame(&paper_frame());
        f.invalidate(1); // slot 1 still feeds slots 2 and 3
    }

    #[test]
    fn fuse_assert_rewrites_to_assert_cmp() {
        let mut f = OptFrame::from_frame(&paper_frame());
        f.fuse_assert(7, 6);
        let a = f.slot(7);
        assert_eq!(a.op, Opcode::AssertCmp);
        assert_eq!(a.src_a, Some(Src::Slot(5)), "reads the Cmp's operand");
        assert_eq!(a.flags_src, None);
        // The Cmp's flags keep one consumer: the frame's flags-out.
        assert_eq!(f.flags_uses(6), 1);
        // Slot 5's value gained a use (Cmp + EAX live-out + fused assert).
        assert_eq!(f.value_uses(5), 3);
    }

    #[test]
    fn replace_with_const_releases_inputs() {
        let mut f = OptFrame::from_frame(&paper_frame());
        // Pretend constant propagation proved slot 1 = ESP0 - 4 ... it
        // cannot (ESP is live-in), so use slot 5 (eax=0) -> fold nothing.
        // Instead fold slot 5 itself is already MovImm; fold slot 1 to a
        // constant to exercise the bookkeeping.
        let before = f.value_uses(3);
        f.replace_with_const(1, 0x7ff0);
        assert_eq!(f.slot(1).op, Opcode::MovImm);
        assert_eq!(f.slot(1).imm, 0x7ff0);
        assert_eq!(f.value_uses(3), before);
        // Slot 1 no longer reads ESP live-in; its consumers are unchanged.
        assert_eq!(f.value_uses(1), 2);
    }

    #[test]
    fn compact_renumbers_everything() {
        let mut f = OptFrame::from_frame(&paper_frame());
        f.fuse_assert(7, 6);
        // The Cmp (slot 6) survives — it is the frame's flags-out — but
        // slot 1 can go once its users are redirected.
        f.redirect_value_uses(1, Src::LiveIn(ArchReg::Esp));
        f.invalidate(1);
        f.compact();
        assert_eq!(f.len(), 7);
        assert!(f.iter().all(|(_, u)| u.valid));
        // Old slot 7 (assert) is now the last slot; expectation follows it.
        assert_eq!(f.expectations().len(), 1);
        assert_eq!(f.expectations()[0].uop_index, 6);
        // Live-out ESP now points at the compacted position of old slot 3.
        let lo: std::collections::HashMap<_, _> = f.live_out().iter().copied().collect();
        assert_eq!(lo[&ArchReg::Esp], Src::Slot(2));
        // Use counts still consistent.
        assert_eq!(f.value_uses(2), 2);
        // Flags-out follows the Cmp to its new index.
        assert_eq!(f.flags_out(), FlagsSrc::Slot(5));
    }

    #[test]
    fn removed_expectations_disappear_on_compact() {
        let mut f = OptFrame::from_frame(&paper_frame());
        f.fuse_assert(7, 6);
        // Drop the assert entirely (as constant propagation would when the
        // assertion is provably true).
        f.remove_expectation_at(7);
        // AssertCmp consumes slot 5; release by invalidating.
        f.invalidate(7);
        f.compact();
        assert!(f.expectations().is_empty());
    }

    #[test]
    fn block_map_survives_compaction() {
        let mut f = OptFrame::from_frame(&paper_frame());
        assert_eq!(f.block_count(), 2);
        assert_eq!(f.block_of(7), 1);
        f.redirect_value_uses(1, Src::LiveIn(ArchReg::Esp));
        f.invalidate(1);
        f.compact();
        assert_eq!(f.block_count(), 2);
        // The assert (now slot 6) is still in block 1.
        assert_eq!(f.block_of(6), 1);
    }

    #[test]
    fn validate_accepts_all_stages() {
        let mut f = OptFrame::from_frame(&paper_frame());
        f.validate().expect("fresh remap is valid");
        f.fuse_assert(7, 6);
        f.validate().expect("after fusion");
        f.redirect_value_uses(1, Src::LiveIn(ArchReg::Esp));
        f.invalidate(1);
        f.validate().expect("after removal");
        f.compact();
        f.validate().expect("after compaction");
    }

    #[test]
    fn value_users_enumerates_children() {
        let f = OptFrame::from_frame(&paper_frame());
        let users = f.value_users(1);
        assert_eq!(users.len(), 2);
        assert!(users.contains(&(2, Operand::A)));
        assert!(users.contains(&(3, Operand::A)));
    }
}
