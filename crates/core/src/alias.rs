//! Alias profiles for speculative memory optimization.

use std::collections::HashSet;

/// A record of which memory instructions *aliased* (touched the same
/// address) during profiled execution.
///
/// The paper (§3.4): "We record aliasing events during execution and pass
/// this information to the optimizer. If the intervening stores did not
/// alias during execution, the optimizer speculates that they never alias,
/// and removes the load."
///
/// Pairs are keyed by the x86 addresses of the two memory instructions and
/// are unordered.
#[derive(Debug, Clone, Default)]
pub struct AliasProfile {
    pairs: HashSet<(u32, u32)>,
}

impl AliasProfile {
    /// A profile with no recorded aliasing events — every speculation is
    /// permitted.
    pub fn empty() -> AliasProfile {
        AliasProfile::default()
    }

    /// Creates an empty profile (same as [`AliasProfile::empty`]).
    pub fn new() -> AliasProfile {
        AliasProfile::default()
    }

    fn key(a: u32, b: u32) -> (u32, u32) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Records that the memory instructions at `a` and `b` touched the same
    /// address in some dynamic instance.
    pub fn record(&mut self, a: u32, b: u32) {
        self.pairs.insert(Self::key(a, b));
    }

    /// True if an aliasing event between `a` and `b` was ever observed.
    pub fn aliased(&self, a: u32, b: u32) -> bool {
        self.pairs.contains(&Self::key(a, b))
    }

    /// Number of recorded aliasing pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if no aliasing events are recorded.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Merges another profile into this one.
    pub fn merge(&mut self, other: &AliasProfile) {
        self.pairs.extend(other.pairs.iter().copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unordered_pairs() {
        let mut p = AliasProfile::new();
        p.record(0x10, 0x20);
        assert!(p.aliased(0x10, 0x20));
        assert!(p.aliased(0x20, 0x10));
        assert!(!p.aliased(0x10, 0x30));
        assert_eq!(p.len(), 1);
        p.record(0x20, 0x10);
        assert_eq!(p.len(), 1, "duplicate pair collapses");
    }

    #[test]
    fn merge_unions() {
        let mut a = AliasProfile::new();
        a.record(1, 2);
        let mut b = AliasProfile::new();
        b.record(3, 4);
        a.merge(&b);
        assert!(a.aliased(1, 2) && a.aliased(3, 4));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn empty_profile_permits_everything() {
        let p = AliasProfile::empty();
        assert!(p.is_empty());
        assert!(!p.aliased(0, 0));
    }
}
