//! The optimization pipeline: configuration and the pass driver.

use crate::passid::{run_pass, PassCtx, PassId};
use crate::{AliasProfile, OptFrame, OptStats};
use replay_frame::Frame;
use replay_obs::Obs;

/// The scope at which optimizations are applied (§3, §6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptScope {
    /// Optimize the frame as one atomic unit — the full rePLay model.
    #[default]
    Frame,
    /// Optimize each constituent basic block individually (the paper's
    /// Figure 9 "Block" configuration): no transformation crosses a block
    /// boundary and every block preserves its architectural outputs.
    Block,
    /// The trace-cache model of Figure 2's fourth column: a single entry
    /// point is assumed (transformations may reach backward across
    /// blocks), but intermediate exits are still possible, so every block
    /// except the last must preserve its general-purpose outputs.
    InterBlock,
}

/// Which optimizations run, and how. Field names follow the paper's
/// Figure 10 ablation labels.
#[derive(Debug, Clone)]
pub struct OptConfig {
    /// Optimization scope (frame-level vs block-level).
    pub scope: OptScope,
    /// ASST: value-assertion fusion (compare + assert → one uop).
    pub assert_fuse: bool,
    /// CP: constant propagation.
    pub const_prop: bool,
    /// CSE: common-subexpression elimination (ALU and redundant loads).
    pub cse: bool,
    /// NOP: NOP and intra-frame unconditional-jump removal.
    pub nop_removal: bool,
    /// RA: reassociation (and copy propagation).
    pub reassoc: bool,
    /// SF: store forwarding.
    pub store_fwd: bool,
    /// Allow speculative memory optimization across may-alias stores
    /// (unsafe-store marking, §3.4). Applies to both CSE loads and SF.
    pub speculative_memory: bool,
    /// Maximum pass-pipeline iterations (passes enable one another, so the
    /// pipeline loops until quiescent or this bound).
    pub max_iterations: usize,
    /// Extension (§4 position field): reorder the final frame by dataflow
    /// criticality during cleanup. Off in the paper's evaluated
    /// configuration; see `DESIGN.md`.
    pub reschedule: bool,
}

impl Default for OptConfig {
    /// Everything enabled at frame scope — the paper's RPO configuration.
    fn default() -> OptConfig {
        OptConfig {
            scope: OptScope::Frame,
            assert_fuse: true,
            const_prop: true,
            cse: true,
            nop_removal: true,
            reassoc: true,
            store_fwd: true,
            speculative_memory: true,
            max_iterations: 4,
            reschedule: false,
        }
    }
}

impl OptConfig {
    /// The configuration with every optimization disabled (dead-code
    /// elimination still runs — it is the collector every pass relies on,
    /// and on an untouched frame it removes nothing that was live).
    pub fn none() -> OptConfig {
        OptConfig {
            scope: OptScope::Frame,
            assert_fuse: false,
            const_prop: false,
            cse: false,
            nop_removal: false,
            reassoc: false,
            store_fwd: false,
            speculative_memory: false,
            max_iterations: 1,
            reschedule: false,
        }
    }

    /// The default configuration with one named optimization disabled —
    /// the paper's Figure 10 leave-one-out trials. Recognized names (case
    /// insensitive): `ASST`, `CP`, `CSE`, `NOP`, `RA`, `SF`.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized name.
    pub fn without(name: &str) -> OptConfig {
        let mut cfg = OptConfig::default();
        match name.to_ascii_uppercase().as_str() {
            "ASST" => cfg.assert_fuse = false,
            "CP" => cfg.const_prop = false,
            "CSE" => cfg.cse = false,
            "NOP" => cfg.nop_removal = false,
            "RA" => cfg.reassoc = false,
            "SF" => cfg.store_fwd = false,
            other => panic!("unknown optimization {other:?}"),
        }
        cfg
    }

    /// The default configuration restricted to block scope (Figure 9).
    pub fn block_scope() -> OptConfig {
        OptConfig {
            scope: OptScope::Block,
            ..OptConfig::default()
        }
    }

    /// The default configuration at inter-block (trace-cache) scope —
    /// Figure 2's fourth column.
    pub fn inter_block_scope() -> OptConfig {
        OptConfig {
            scope: OptScope::InterBlock,
            ..OptConfig::default()
        }
    }

    /// True if the configuration enables the given pass. Dead-code
    /// elimination is always on (it is the collector every other pass
    /// relies on); the memory pass runs if either of its halves does.
    pub fn enables(&self, pass: PassId) -> bool {
        match pass {
            PassId::NopRemoval => self.nop_removal,
            PassId::ConstProp => self.const_prop,
            PassId::Reassociate => self.reassoc,
            PassId::AssertFuse => self.assert_fuse,
            PassId::MemoryOpt => self.store_fwd || self.cse,
            PassId::CseAlu => self.cse,
            PassId::Dce => true,
        }
    }

    /// The per-pass context this configuration induces over a profile.
    pub fn pass_ctx<'a>(&self, profile: &'a AliasProfile) -> PassCtx<'a> {
        PassCtx {
            scope: self.scope,
            profile,
            speculative: self.speculative_memory,
            store_fwd: self.store_fwd,
            redundant_loads: self.cse,
        }
    }
}

/// Optimizes a frame: remap → pass pipeline → cleanup/compaction.
///
/// Returns the compacted, renamed frame ready for the frame cache, together
/// with per-frame statistics. Passes run in the order NOP → CP → RA → ASST
/// → memory (SF + redundant loads) → ALU CSE → DCE, and the whole sequence
/// repeats until no pass changes anything (bounded by
/// [`OptConfig::max_iterations`]) — reassociation is the gateway that
/// exposes memory redundancies to the later passes (§6.4).
///
/// # Example
///
/// ```
/// use replay_core::{optimize, AliasProfile, OptConfig};
/// use replay_frame::{Frame, FrameId};
/// use replay_uop::{ArchReg, Uop};
///
/// let frame = Frame {
///     id: FrameId(0),
///     start_addr: 0,
///     uops: vec![
///         Uop::store(ArchReg::Esp, -4, ArchReg::Ebp),
///         Uop::load(ArchReg::Ebx, ArchReg::Esp, -4),
///     ],
///     x86_addrs: vec![0],
///     block_starts: vec![0],
///     expectations: vec![],
///     exit_next: 8,
///     orig_uop_count: 2,
/// };
/// let (opt, stats) = optimize(&frame, &AliasProfile::empty(), &OptConfig::default());
/// assert_eq!(stats.store_forwards, 1);
/// assert_eq!(opt.uop_count(), 1); // only the store remains
/// ```
pub fn optimize(frame: &Frame, profile: &AliasProfile, cfg: &OptConfig) -> (OptFrame, OptStats) {
    optimize_observed(frame, profile, cfg, &mut Obs::disabled())
}

/// [`optimize`] with observability: in addition to the per-pass removal
/// attribution that always lands in [`OptStats::removed_by_pass`], an
/// enabled [`Obs`] receives per-pass rewrite counters
/// (`opt.pass.<NAME>.rewrites`, `opt.pass.<NAME>.removed_uops`) and span
/// wall-time (`opt.pass.<NAME>.time_ns`), plus whole-pipeline metrics
/// (`opt.frames`, `opt.iterations`, `opt.time_ns`). A disabled handle makes
/// this identical to [`optimize`] — no formatting, no clock reads.
pub fn optimize_observed(
    frame: &Frame,
    profile: &AliasProfile,
    cfg: &OptConfig,
    obs: &mut Obs,
) -> (OptFrame, OptStats) {
    let total_span = obs.start_span();
    let mut f = OptFrame::from_frame(frame);
    let mut stats = OptStats {
        uops_before: f.uop_count() as u64,
        loads_before: f.load_count() as u64,
        ..OptStats::default()
    };

    let ctx = cfg.pass_ctx(profile);
    for _ in 0..cfg.max_iterations.max(1) {
        let mut changed = 0u64;
        for (pi, pass) in PassId::ALL.into_iter().enumerate() {
            if cfg.enables(pass) {
                let span = obs.start_span();
                let valid_before = f.uop_count();
                let rewrites = run_pass(&mut f, pass, &ctx, &mut stats);
                changed += rewrites;
                stats.rewrites_by_pass[pi] += rewrites;
                // Valid-slot delta: which pass actually invalidated uops.
                // Never negative (no pass materializes new uops), and the
                // deltas telescope to uops_before - uops_after because
                // compact() drops only already-invalid slots.
                stats.removed_by_pass[pi] += valid_before.saturating_sub(f.uop_count()) as u64;
                if obs.enabled() {
                    obs.end_span(&format!("opt.pass.{}.time_ns", pass.name()), span);
                }
            }
        }
        stats.iterations += 1;
        if changed == 0 {
            break;
        }
    }

    f.compact();
    if cfg.reschedule {
        stats.rescheduled = crate::schedule::reschedule(&mut f);
    }
    stats.uops_after = f.uop_count() as u64;
    stats.loads_after = f.load_count() as u64;
    stats.unsafe_stores = f.unsafe_store_count() as u64;
    observe_opt_result(obs, cfg, &stats);
    if obs.enabled() {
        obs.end_span("opt.time_ns", total_span);
    }
    (f, stats)
}

/// Emits the deterministic per-frame optimizer metrics described by `stats`
/// under `cfg`: per-enabled-pass rewrite counters, the whole-pipeline
/// `opt.frames` / `opt.iterations` counters, the removed-uop histogram, and
/// nonzero per-pass removal attribution. Wall-time spans are *not* included
/// (they are nondeterministic and excluded from default renderers).
///
/// [`optimize_observed`] calls this itself; call it directly only when
/// replaying a previously computed optimization result — e.g. a frame loaded
/// from the persistent artifact store on a warm start — so cold and warm
/// runs produce identical observability profiles.
pub fn observe_opt_result(obs: &mut Obs, cfg: &OptConfig, stats: &OptStats) {
    if !obs.enabled() {
        return;
    }
    for (pi, pass) in PassId::ALL.into_iter().enumerate() {
        if cfg.enables(pass) {
            obs.counter(
                &format!("opt.pass.{}.rewrites", pass.name()),
                stats.rewrites_by_pass[pi],
            );
        }
    }
    obs.counter("opt.frames", 1);
    obs.counter("opt.iterations", stats.iterations);
    obs.hist("opt.frame_removed_uops", stats.removed_uops());
    for (pi, pass) in PassId::ALL.into_iter().enumerate() {
        if stats.removed_by_pass[pi] != 0 {
            obs.counter(
                &format!("opt.pass.{}.removed_uops", pass.name()),
                stats.removed_by_pass[pi],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use replay_frame::{ControlExpectation, FrameId};
    use replay_uop::{ArchReg, Cond, Opcode, Uop};

    /// The running example of the paper's Figure 2: the two basic blocks of
    /// a crafty procedure, as translated micro-operations (column 2).
    fn figure2_frame() -> Frame {
        use ArchReg::*;
        let uops = vec![
            /* 01 */ Uop::store(Esp, -4, Ebp).at(0x10),
            /* 02 */ Uop::lea(Esp, Esp, None, 1, -4).at(0x10),
            /* 03 */ Uop::store(Esp, -4, Ebx).at(0x11),
            /* 04 */ Uop::lea(Esp, Esp, None, 1, -4).at(0x11),
            /* 05 */ Uop::load(Ecx, Esp, 0xc).at(0x12),
            /* 06 */ Uop::load(Ebx, Esp, 0x10).at(0x16),
            /* 07 */ Uop::alu(Opcode::Xor, Eax, Eax, Eax).at(0x1a),
            /* 08 */ Uop::mov(Edx, Ecx).at(0x1c),
            /* 09 */ Uop::alu(Opcode::Or, Edx, Edx, Ebx).at(0x1e),
            /* 10 */ Uop::assert_cc(Cond::Eq).at(0x20), // biased-taken JZ
            /* 11 */ Uop::lea(Esp, Esp, None, 1, 4).at(0x30),
            /* 12 */ Uop::load(Ebx, Esp, -4).at(0x30),
            /* 13 */ Uop::lea(Esp, Esp, None, 1, 4).at(0x31),
            /* 14 */ Uop::load(Ebp, Esp, -4).at(0x31),
            /* 15 */ Uop::load(Et2, Esp, 0).at(0x32),
            /* 16 */ Uop::lea(Esp, Esp, None, 1, 4).at(0x32),
            /* 17 */ Uop::jmp_ind(Et2).at(0x32),
        ];
        Frame {
            id: FrameId(2),
            start_addr: 0x10,
            x86_addrs: vec![
                0x10, 0x11, 0x12, 0x16, 0x1a, 0x1c, 0x1e, 0x20, 0x30, 0x31, 0x32,
            ],
            block_starts: vec![0, 10],
            expectations: vec![ControlExpectation {
                x86_addr: 0x20,
                expected_next: 0x30,
                uop_index: 9,
            }],
            exit_next: 0x5000,
            orig_uop_count: uops.len(),
            uops,
        }
    }

    #[test]
    fn figure2_frame_level_optimization() {
        // The paper removes 7 of 17 uops at frame level, including 2 of
        // the 5 loads (§3.3). Our translation differs slightly in uop 10
        // (already an assert) and 17 (kept as the frame exit), but the
        // same redundancies must disappear:
        //  - one of the two PUSH stack updates (02 or 04),
        //  - the POP updates 11/13 merge into 16,
        //  - the MOV 08 dies after copy propagation,
        //  - load 12 forwards from store 03 (EBX),
        //  - load 14 forwards from store 01 (EBP).
        let (f, stats) = optimize(
            &figure2_frame(),
            &AliasProfile::empty(),
            &OptConfig::default(),
        );
        assert!(
            stats.removed_uops() >= 6,
            "expected >=6 of 17 removed, got {} (listing:\n{})",
            stats.removed_uops(),
            f.listing()
        );
        assert_eq!(stats.removed_loads(), 2, "loads 12 and 14 forwarded");
        assert!(stats.store_forwards >= 2);
        assert!(stats.reassociations >= 4);
        // The assert (expectation) survives.
        assert_eq!(f.expectations().len(), 1);
    }

    #[test]
    fn figure2_scopes_form_a_hierarchy() {
        // Figure 2's columns: intra-block < inter-block < frame-level.
        let run = |cfg: &OptConfig| {
            optimize(&figure2_frame(), &AliasProfile::empty(), cfg)
                .1
                .removed_uops()
        };
        let block = run(&OptConfig::block_scope());
        let inter = run(&OptConfig::inter_block_scope());
        let frame = run(&OptConfig::default());
        assert!(block <= inter, "block {block} <= inter {inter}");
        assert!(inter <= frame, "inter {inter} <= frame {frame}");
        assert!(block < frame, "the hierarchy is strict end to end");
        // Inter-block allows the cross-block EBP forward (paper's 14) but
        // must keep block 1's EBX/ECX outputs alive.
        let (f, stats) = optimize(
            &figure2_frame(),
            &AliasProfile::empty(),
            &OptConfig::inter_block_scope(),
        );
        assert!(
            stats.store_forwards >= 1,
            "EBP reload forwarded:\n{}",
            f.listing()
        );
    }

    #[test]
    fn figure2_block_level_is_weaker() {
        let (_f, frame_stats) = optimize(
            &figure2_frame(),
            &AliasProfile::empty(),
            &OptConfig::default(),
        );
        let (_f, block_stats) = optimize(
            &figure2_frame(),
            &AliasProfile::empty(),
            &OptConfig::block_scope(),
        );
        assert!(
            block_stats.removed_uops() < frame_stats.removed_uops(),
            "block {} vs frame {}",
            block_stats.removed_uops(),
            frame_stats.removed_uops()
        );
        // Inter-block store forwarding (loads 12/14) is impossible at
        // block scope.
        assert_eq!(block_stats.store_forwards, 0);
    }

    #[test]
    fn disabling_reassociation_blocks_memory_opts() {
        // The gateway effect (§6.4): without RA the stack-pointer chain
        // hides the store/load address equality.
        let (_f, stats) = optimize(
            &figure2_frame(),
            &AliasProfile::empty(),
            &OptConfig::without("RA"),
        );
        assert_eq!(stats.store_forwards, 0, "no SF without RA");
    }

    #[test]
    fn none_config_changes_nothing() {
        let (f, stats) = optimize(&figure2_frame(), &AliasProfile::empty(), &OptConfig::none());
        assert_eq!(stats.removed_uops(), 0);
        assert_eq!(f.uop_count(), 17);
    }

    #[test]
    fn without_is_leave_one_out() {
        for name in ["ASST", "CP", "CSE", "NOP", "RA", "SF"] {
            let cfg = OptConfig::without(name);
            let disabled = [
                !cfg.assert_fuse,
                !cfg.const_prop,
                !cfg.cse,
                !cfg.nop_removal,
                !cfg.reassoc,
                !cfg.store_fwd,
            ]
            .iter()
            .filter(|&&d| d)
            .count();
            assert_eq!(disabled, 1, "{name} disables exactly one pass");
        }
    }

    #[test]
    #[should_panic(expected = "unknown optimization")]
    fn without_rejects_unknown() {
        OptConfig::without("FOO");
    }

    #[test]
    fn call_ret_collapse() {
        // CALL + callee RET inside one frame: the return-address load is
        // forwarded and the target assertion evaporates, exactly the §3.3
        // "larger frame" discussion.
        use ArchReg::*;
        let uops = vec![
            // CALL 0x5000 (return address 0x105)
            Uop::mov_imm(Et1, 0x105).at(0x100),
            Uop::store(Esp, -4, Et1).at(0x100),
            Uop::lea(Esp, Esp, None, 1, -4).at(0x100),
            Uop::jmp(0x5000).at(0x100),
            // callee body
            Uop::alu_imm(Opcode::Add, Eax, Eax, 1).at(0x5000),
            // RET (biased to 0x105): ET2 <- [ESP]; ESP += 4; assert ET2 == 0x105
            Uop::load(Et2, Esp, 0).at(0x5002),
            Uop::lea(Esp, Esp, None, 1, 4).at(0x5002),
            Uop::assert_cmp(Cond::Eq, Et2, None, 0x105).at(0x5002),
            // back at the call site
            Uop::alu_imm(Opcode::Add, Ebx, Ebx, 1).at(0x105),
        ];
        let frame = Frame {
            id: FrameId(9),
            start_addr: 0x100,
            x86_addrs: vec![0x100, 0x5000, 0x5002, 0x105],
            block_starts: vec![0, 4, 8],
            expectations: vec![ControlExpectation {
                x86_addr: 0x5002,
                expected_next: 0x105,
                uop_index: 7,
            }],
            exit_next: 0x110,
            orig_uop_count: uops.len(),
            uops,
        };
        let (f, stats) = optimize(&frame, &AliasProfile::empty(), &OptConfig::default());
        // The jump, the return-address load, the assert, and one ESP
        // update must all be gone. The return-address store and MovImm may
        // also die is not possible (stores are never removed).
        assert!(stats.asserts_removed >= 1, "RET assert proven true");
        assert!(stats.store_forwards >= 1, "return address forwarded");
        assert!(stats.nop_removed >= 1, "intra-frame jump removed");
        assert!(f.expectations().is_empty());
        assert!(
            stats.removed_uops() >= 4,
            "got {} removed:\n{}",
            stats.removed_uops(),
            f.listing()
        );
    }

    #[test]
    fn stats_iterations_bounded() {
        let (_f, stats) = optimize(
            &figure2_frame(),
            &AliasProfile::empty(),
            &OptConfig {
                max_iterations: 2,
                ..OptConfig::default()
            },
        );
        assert!(stats.iterations <= 2);
    }
}
