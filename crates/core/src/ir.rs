//! The renamed (slot-indexed) micro-operation IR.

use replay_uop::{ArchReg, Cond, Opcode};
use std::fmt;

/// Index of a uop in the optimization buffer. After remapping, the uop at
/// slot *m* writes physical register *m* (paper §4), so a slot number *is* a
/// physical register name.
pub type Slot = u16;

/// A renamed value source: either an architectural live-in or the value
/// produced by a buffer slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Src {
    /// The value of an architectural register at frame entry.
    LiveIn(ArchReg),
    /// The value produced by the uop at this slot.
    Slot(Slot),
}

impl fmt::Display for Src {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Src::LiveIn(r) => write!(f, "{r}.in"),
            Src::Slot(s) => write!(f, "p{s}"),
        }
    }
}

/// A renamed flags source: the frame-entry flags or the flags produced by a
/// buffer slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlagsSrc {
    /// The architectural flags at frame entry.
    LiveIn,
    /// The flags written by the uop at this slot.
    Slot(Slot),
}

/// Names one of a uop's two value-operand positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// The `src_a` position (first source / memory base).
    A,
    /// The `src_b` position (second source / load index / store data).
    B,
}

/// A micro-operation in renamed form (the optimizer's Figure 4 format).
///
/// Compared to [`replay_uop::Uop`], register sources have been resolved to
/// [`Src`] (live-in or producer slot), the architectural destination is
/// retained only for live-out bookkeeping, and the flags dependency of
/// branch/assert uops is explicit in `flags_src`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptUop {
    /// The operation.
    pub op: Opcode,
    /// First renamed source (base register for memory ops).
    pub src_a: Option<Src>,
    /// Second renamed source (index for loads, data for stores).
    pub src_b: Option<Src>,
    /// Immediate / displacement / shift count.
    pub imm: i32,
    /// Index scale for `Load`/`Lea`.
    pub scale: u8,
    /// Condition code for `Br`/`Assert*`.
    pub cc: Option<Cond>,
    /// Architectural destination, if the uop produces a value.
    pub dst_arch: Option<ArchReg>,
    /// True if the uop writes the architectural flags.
    pub writes_flags: bool,
    /// The flags producer this uop reads, for `Br`/`Assert`.
    pub flags_src: Option<FlagsSrc>,
    /// Branch target for `Jmp`/`Br`.
    pub target: u32,
    /// Address of the parent x86 instruction.
    pub x86_addr: u32,
    /// Valid bit: cleared when an optimization removes the uop.
    pub valid: bool,
    /// Marked by speculative memory optimization: at execution this store's
    /// address must be compared against all prior memory transactions in
    /// the frame; a match aborts the frame (§3.4).
    pub unsafe_store: bool,
}

impl OptUop {
    /// True if this uop is a load.
    pub fn is_load(&self) -> bool {
        self.op == Opcode::Load
    }

    /// True if this uop is a store.
    pub fn is_store(&self) -> bool {
        self.op == Opcode::Store
    }

    /// True if the uop must never be deleted by dead-code elimination:
    /// stores, branches, assertions, and fences.
    pub fn has_side_effect(&self) -> bool {
        self.is_store() || self.op.is_branch() || self.op.is_assert() || self.op == Opcode::Fence
    }

    /// The operand at a position.
    pub fn operand(&self, which: Operand) -> Option<Src> {
        match which {
            Operand::A => self.src_a,
            Operand::B => self.src_b,
        }
    }

    /// Sets the operand at a position.
    pub fn set_operand(&mut self, which: Operand, src: Option<Src>) {
        match which {
            Operand::A => self.src_a = src,
            Operand::B => self.src_b = src,
        }
    }

    /// The symbolic memory address of a `Load`/`Store`, if any:
    /// `(base, index, scale, disp)`. Stores are index-free by construction.
    pub fn mem_addr(&self) -> Option<(Option<Src>, Option<Src>, u8, i32)> {
        match self.op {
            Opcode::Load => Some((self.src_a, self.src_b, self.scale, self.imm)),
            Opcode::Store => Some((self.src_a, None, 1, self.imm)),
            _ => None,
        }
    }
}

impl fmt::Display for OptUop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.valid {
            write!(f, "(removed) ")?;
        }
        write!(f, "{}", self.op)?;
        if let Some(cc) = self.cc {
            write!(f, ".{cc}")?;
        }
        if let Some(d) = self.dst_arch {
            write!(f, " [{d}]")?;
        }
        if let Some(a) = self.src_a {
            write!(f, " {a}")?;
        }
        if let Some(b) = self.src_b {
            write!(f, " {b}")?;
        }
        if self.imm != 0 || self.op == Opcode::MovImm {
            write!(f, " #{}", self.imm)?;
        }
        if self.unsafe_store {
            write!(f, " !unsafe")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank(op: Opcode) -> OptUop {
        OptUop {
            op,
            src_a: None,
            src_b: None,
            imm: 0,
            scale: 1,
            cc: None,
            dst_arch: None,
            writes_flags: false,
            flags_src: None,
            target: 0,
            x86_addr: 0,
            valid: true,
            unsafe_store: false,
        }
    }

    #[test]
    fn operand_accessors() {
        let mut u = blank(Opcode::Add);
        u.set_operand(Operand::A, Some(Src::Slot(3)));
        u.set_operand(Operand::B, Some(Src::LiveIn(ArchReg::Esp)));
        assert_eq!(u.operand(Operand::A), Some(Src::Slot(3)));
        assert_eq!(u.operand(Operand::B), Some(Src::LiveIn(ArchReg::Esp)));
    }

    #[test]
    fn mem_addr_for_loads_and_stores() {
        let mut ld = blank(Opcode::Load);
        ld.src_a = Some(Src::LiveIn(ArchReg::Esp));
        ld.src_b = Some(Src::Slot(2));
        ld.scale = 4;
        ld.imm = 8;
        assert_eq!(
            ld.mem_addr(),
            Some((Some(Src::LiveIn(ArchReg::Esp)), Some(Src::Slot(2)), 4, 8))
        );

        let mut st = blank(Opcode::Store);
        st.src_a = Some(Src::Slot(1));
        st.src_b = Some(Src::Slot(0));
        st.imm = -4;
        // Store's data operand is not part of the address.
        assert_eq!(st.mem_addr(), Some((Some(Src::Slot(1)), None, 1, -4)));

        assert_eq!(blank(Opcode::Add).mem_addr(), None);
    }

    #[test]
    fn side_effects() {
        assert!(blank(Opcode::Store).has_side_effect());
        assert!(blank(Opcode::Assert).has_side_effect());
        assert!(blank(Opcode::Br).has_side_effect());
        assert!(blank(Opcode::Fence).has_side_effect());
        assert!(!blank(Opcode::Load).has_side_effect());
        assert!(!blank(Opcode::Add).has_side_effect());
    }

    #[test]
    fn display_marks_removed_and_unsafe() {
        let mut u = blank(Opcode::Store);
        u.unsafe_store = true;
        assert!(u.to_string().contains("!unsafe"));
        u.valid = false;
        assert!(u.to_string().starts_with("(removed)"));
    }

    #[test]
    fn src_ordering_and_display() {
        assert!(Src::LiveIn(ArchReg::Eax) < Src::Slot(0));
        assert_eq!(Src::Slot(7).to_string(), "p7");
        assert_eq!(Src::LiveIn(ArchReg::Esp).to_string(), "ESP.in");
    }
}
