//! Specialized frame execution plans — the branch-minimized fast path for
//! hot cached frames.
//!
//! [`probe_frame`](crate::probe_frame) re-derives everything about a frame
//! on every dynamic hit: each uop re-matches a 26-way opcode enum, each
//! operand re-unwraps an `Option<Src>`, every load and store pays a SipHash
//! store-buffer lookup, and removed-uop bookkeeping (`Nop`, intra-frame
//! jumps, folded moves) still walks the slots. A hot frame in the frame
//! cache executes thousands of times with none of that ever changing, so
//! the simulator "compiles" it once into an [`ExecPlan`]: a flat array of
//! fixed-size steps over a register-file-like cell array.
//!
//! The compilation pre-resolves every operand to a *cell index*:
//!
//! | cells | contents |
//! |-------|----------|
//! | `0` | the constant zero (absent operands) |
//! | `1 ..= 16` | the live-in architectural registers, snapshot at probe entry |
//! | `17 .. 17 + n` | one cell per frame slot (slot `s` writes cell `17 + s`) |
//! | tail | the folded constant pool (immediates-as-operands, `MovImm` results) |
//!
//! Flags get the same treatment with their own cell array: cell `0` is the
//! [`Flags::CLEAR`] constant, cell `1` the live-in flags, and one cell per
//! flag-writing slot after that.
//!
//! Folding happens at compile time, not probe time: `MovImm` becomes a
//! constant-pool cell, `Mov` becomes cell aliasing, and `Nop` / `Fence` /
//! control uops emit no step at all — the plan's step array contains only
//! the uops that do work. The store buffer is a backward scan of the
//! transaction list (frames are short; the scan beats hashing every
//! address), and the unsafe-store alias check (§3.4) is the same forward
//! scan the interpreter performs, so conflict attribution is identical.
//!
//! **Bit-identity contract**: for every frame and machine state,
//! [`ExecPlan::probe`] returns exactly the [`ProbeOutcome`] that
//! [`probe_frame`](crate::probe_frame) returns, with a byte-identical
//! transaction list, and [`ExecPlan::exec`] commits exactly what
//! [`exec_frame`](crate::exec_frame) commits. The simulator still treats
//! the interpreter as authoritative: any non-completing plan probe is
//! re-probed through `probe_frame` before the outcome is acted on, so a
//! plan bug can cost time but never correctness. `replay-check` enforces
//! the contract differentially on every generated frame.

use crate::exec::{FrameOutcome, MemTransaction, ProbeOutcome};
use crate::ir::{FlagsSrc, Src};
use crate::OptFrame;
use replay_uop::{eval_alu_with_flags, ArchReg, Cond, Flags, MachineState, Opcode, NUM_ARCH_REGS};

/// Value cell holding the constant zero.
const ZERO_CELL: u16 = 0;
/// First live-in register cell (`1 + ArchReg::index()`).
const LIVE_IN_BASE: u16 = 1;
/// First per-slot value cell.
const SLOT_BASE: u16 = LIVE_IN_BASE + NUM_ARCH_REGS as u16;
/// Flag cell holding [`Flags::CLEAR`].
const FLAGS_CLEAR_CELL: u16 = 0;
/// Flag cell holding the live-in flags.
const FLAGS_LIVE_IN_CELL: u16 = 1;
/// Sentinel: the step writes no flag cell.
const NO_FLAG_CELL: u16 = u16::MAX;

/// One pre-compiled operation of an [`ExecPlan`].
#[derive(Debug, Clone, Copy)]
enum StepKind {
    /// `dst = a + b`, flags [`Flags::from_add`].
    Add,
    /// `dst = a - b`, flags [`Flags::from_sub`].
    Sub,
    /// `dst = a & b`, flags [`Flags::from_logic_result`].
    And,
    /// `dst = a | b`.
    Or,
    /// `dst = a ^ b`.
    Xor,
    /// Flags of `a - b` only.
    Cmp,
    /// Flags of `a & b` only.
    Test,
    /// `dst = a + b * scale + imm`, no flags.
    Lea,
    /// A shift (`Shl`/`Shr`/`Sar`): reads the previous flags cell.
    Shift(Opcode),
    /// Any other ALU opcode (`Mul`, `Div`, `Rem`, `Not`, `Neg`), evaluated
    /// through [`eval_alu_with_flags`]; `Div`/`Rem` can fault.
    AluGen(Opcode),
    /// `dst = mem[a + b * scale + imm]` with store-buffer forwarding.
    Load,
    /// `mem[a + imm] = b` (buffered until commit).
    Store,
    /// A [`Store`](StepKind::Store) marked unsafe by speculative memory
    /// optimization: its address is compared against every earlier
    /// transaction first (§3.4).
    StoreUnsafe,
    /// Assert `cc` over the flags cell `fsrc`.
    AssertFlags(Cond),
    /// Assert `cc` over the flags of `a - b`.
    AssertCmp(Cond),
    /// Assert `cc` over the flags of `a & b`.
    AssertTest(Cond),
}

/// One fixed-size step: pre-resolved cells, no `Option`s on the hot path.
#[derive(Debug, Clone, Copy)]
struct Step {
    kind: StepKind,
    /// Value cell of operand A.
    a: u16,
    /// Value cell of operand B (data cell for stores, index for loads).
    b: u16,
    /// Value cell written.
    dst: u16,
    /// Flags cell read (shifts).
    fsrc: u16,
    /// Flags cell written ([`NO_FLAG_CELL`] if none).
    fdst: u16,
    /// Memory displacement / `Lea` displacement.
    imm: i32,
    /// Index scale for `Load` / `Lea`.
    scale: u32,
    /// The originating frame slot, for transaction and outcome reporting.
    uop_index: u16,
}

/// Reusable buffers for plan execution, mirroring
/// [`ExecScratch`](crate::ExecScratch) for the interpreted path. One
/// scratch serves plans of any size; nothing is zeroed between probes
/// because every cell a plan reads is written first (constants and
/// live-ins at probe entry, slot cells by their producing step).
#[derive(Debug, Default)]
pub struct PlanScratch {
    values: Vec<u32>,
    flags: Vec<Flags>,
    transactions: Vec<MemTransaction>,
}

impl PlanScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> PlanScratch {
        PlanScratch::default()
    }

    /// The memory accesses recorded by the most recent probe, in program
    /// order — byte-identical to what
    /// [`ExecScratch::transactions`](crate::ExecScratch::transactions)
    /// holds after an interpreted probe of the same frame and state.
    pub fn transactions(&self) -> &[MemTransaction] {
        &self.transactions
    }
}

/// A compiled, branch-minimized execution plan for one optimized frame.
///
/// Built once via [`ExecPlan::compile`] when a cached frame crosses the
/// specialization threshold; executed with [`ExecPlan::probe`] (the
/// simulator's path) or [`ExecPlan::exec`] (probe + commit, the
/// differential-testing path).
#[derive(Debug, Clone)]
pub struct ExecPlan {
    steps: Vec<Step>,
    /// Total value cells (`1 + NUM_ARCH_REGS + slots + constants`).
    value_cells: usize,
    /// Total flag cells (`2 + flag-writing steps`).
    flag_cells: usize,
    /// Constant pool: `(cell, value)` pairs written at probe entry.
    consts: Vec<(u16, u32)>,
    /// Live-out registers resolved to value cells.
    live_out: Vec<(ArchReg, u16)>,
    /// The flags cell committed on completion.
    flags_out: u16,
}

impl ExecPlan {
    /// Compiles a compacted frame into a plan, or `None` if the frame
    /// contains anything the plan format does not cover (invalidated
    /// slots, an unexpected opcode, or a cell count overflowing `u16`) —
    /// the caller then stays on the interpreted path forever.
    pub fn compile(frame: &OptFrame) -> Option<ExecPlan> {
        let n = frame.len();
        // Per-slot value/flag cell of record, as seen by *readers*. Folded
        // slots alias the cell that already holds their result.
        let mut val_cell = vec![ZERO_CELL; n];
        let mut flag_cell = vec![FLAGS_CLEAR_CELL; n];
        let mut consts: Vec<(u16, u32)> = Vec::new();
        let mut next_value_cell = SLOT_BASE as usize + n;
        let mut next_flag_cell = FLAGS_LIVE_IN_CELL as usize + 1;
        let mut steps = Vec::with_capacity(n);

        let mut const_cell = |v: u32, consts: &mut Vec<(u16, u32)>| -> Option<u16> {
            if let Some(&(c, _)) = consts.iter().find(|&&(_, cv)| cv == v) {
                return Some(c);
            }
            let c = u16::try_from(next_value_cell).ok()?;
            next_value_cell += 1;
            consts.push((c, v));
            Some(c)
        };
        let resolve = |src: Option<Src>, val_cell: &[u16]| -> u16 {
            match src {
                None => ZERO_CELL,
                Some(Src::LiveIn(r)) => LIVE_IN_BASE + r.index() as u16,
                Some(Src::Slot(s)) => val_cell[s as usize],
            }
        };
        let resolve_flags = |fs: Option<FlagsSrc>, flag_cell: &[u16]| -> u16 {
            match fs {
                None => FLAGS_CLEAR_CELL,
                Some(FlagsSrc::LiveIn) => FLAGS_LIVE_IN_CELL,
                Some(FlagsSrc::Slot(s)) => flag_cell[s as usize],
            }
        };

        for (i, u) in frame.iter() {
            if !u.valid {
                return None; // plan compilation requires a compacted frame
            }
            let i_us = i as usize;
            let own_cell = u16::try_from(SLOT_BASE as usize + i_us).ok()?;
            let uop_index = u16::try_from(i_us).ok()?;
            let mut step = Step {
                kind: StepKind::Add,
                a: resolve(u.src_a, &val_cell),
                b: ZERO_CELL,
                dst: own_cell,
                fsrc: FLAGS_CLEAR_CELL,
                fdst: NO_FLAG_CELL,
                imm: u.imm,
                scale: u.scale as u32,
                uop_index,
            };
            // The interpreter leaves `values[i] = 0` and
            // `flag_results[i] = CLEAR` for slots that produce nothing;
            // aliasing readers to the constant cells reproduces that.
            val_cell[i_us] = own_cell;
            match u.op {
                Opcode::Nop | Opcode::Fence | Opcode::Br | Opcode::Jmp | Opcode::JmpInd => {
                    val_cell[i_us] = ZERO_CELL;
                    continue;
                }
                Opcode::MovImm if u.src_b.is_none() => {
                    // Folded into the constant pool: no step at all. The
                    // flags result (when `writes_flags`) is CLEAR, which is
                    // exactly flag cell 0.
                    val_cell[i_us] = const_cell(u.imm as u32, &mut consts)?;
                    continue;
                }
                Opcode::Mov | Opcode::MovImm => {
                    // A register copy is cell aliasing; `MovImm` with a
                    // (never emitted) source operand degenerates to one.
                    val_cell[i_us] = match u.op {
                        Opcode::Mov => resolve(u.src_a, &val_cell),
                        _ => resolve(u.src_b, &val_cell),
                    };
                    continue;
                }
                Opcode::Load => {
                    step.kind = StepKind::Load;
                    step.b = resolve(u.src_b, &val_cell);
                }
                Opcode::Store => {
                    step.kind = if u.unsafe_store {
                        StepKind::StoreUnsafe
                    } else {
                        StepKind::Store
                    };
                    step.b = resolve(u.src_b, &val_cell);
                    val_cell[i_us] = ZERO_CELL;
                }
                Opcode::Assert => {
                    step.kind = StepKind::AssertFlags(u.cc?);
                    step.fsrc = resolve_flags(u.flags_src, &flag_cell);
                    val_cell[i_us] = ZERO_CELL;
                }
                Opcode::AssertCmp | Opcode::AssertTest => {
                    let cc = u.cc?;
                    step.kind = if u.op == Opcode::AssertCmp {
                        StepKind::AssertCmp(cc)
                    } else {
                        StepKind::AssertTest(cc)
                    };
                    step.b = match u.src_b {
                        Some(src) => resolve(Some(src), &val_cell),
                        None => const_cell(u.imm as u32, &mut consts)?,
                    };
                    val_cell[i_us] = ZERO_CELL;
                }
                op if op.is_alu() => {
                    step.b = if op == Opcode::Lea {
                        resolve(u.src_b, &val_cell)
                    } else {
                        match u.src_b {
                            Some(src) => resolve(Some(src), &val_cell),
                            None => const_cell(u.imm as u32, &mut consts)?,
                        }
                    };
                    step.kind = match op {
                        Opcode::Add => StepKind::Add,
                        Opcode::Sub => StepKind::Sub,
                        Opcode::And => StepKind::And,
                        Opcode::Or => StepKind::Or,
                        Opcode::Xor => StepKind::Xor,
                        Opcode::Cmp => StepKind::Cmp,
                        Opcode::Test => StepKind::Test,
                        Opcode::Lea => StepKind::Lea,
                        Opcode::Shl | Opcode::Shr | Opcode::Sar => {
                            step.fsrc = resolve_flags(u.flags_src, &flag_cell);
                            StepKind::Shift(op)
                        }
                        _ => StepKind::AluGen(op),
                    };
                    if u.writes_flags {
                        if op == Opcode::Lea {
                            // `Lea` always produces CLEAR flags; alias the
                            // constant cell instead of allocating one.
                            flag_cell[i_us] = FLAGS_CLEAR_CELL;
                        } else {
                            let fc = u16::try_from(next_flag_cell).ok()?;
                            if fc == NO_FLAG_CELL {
                                return None;
                            }
                            next_flag_cell += 1;
                            step.fdst = fc;
                            flag_cell[i_us] = fc;
                        }
                    }
                }
                _ => return None,
            }
            steps.push(step);
        }

        let live_out = frame
            .live_out()
            .iter()
            .map(|&(r, src)| (r, resolve(Some(src), &val_cell)))
            .collect();
        let flags_out = match frame.flags_out() {
            FlagsSrc::LiveIn => FLAGS_LIVE_IN_CELL,
            FlagsSrc::Slot(s) => flag_cell[s as usize],
        };
        Some(ExecPlan {
            steps,
            value_cells: next_value_cell,
            flag_cells: next_flag_cell,
            consts,
            live_out,
            flags_out,
        })
    }

    /// The number of executable steps (folded and control uops excluded).
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// Probes the plan against `m` without committing, mirroring
    /// [`probe_frame`](crate::probe_frame): the outcome and the scratch's
    /// transaction list are bit-identical to an interpreted probe of the
    /// source frame.
    pub fn probe(&self, m: &MachineState, scratch: &mut PlanScratch) -> ProbeOutcome {
        scratch.transactions.clear();
        if scratch.values.len() < self.value_cells {
            scratch.values.resize(self.value_cells, 0);
        }
        if scratch.flags.len() < self.flag_cells {
            scratch.flags.resize(self.flag_cells, Flags::CLEAR);
        }
        let values = &mut scratch.values[..];
        let flags = &mut scratch.flags[..];
        let transactions = &mut scratch.transactions;
        values[ZERO_CELL as usize] = 0;
        for r in ArchReg::ALL {
            values[LIVE_IN_BASE as usize + r.index()] = m.reg(r);
        }
        for &(cell, v) in &self.consts {
            values[cell as usize] = v;
        }
        flags[FLAGS_CLEAR_CELL as usize] = Flags::CLEAR;
        flags[FLAGS_LIVE_IN_CELL as usize] = m.flags();

        for s in &self.steps {
            let a = values[s.a as usize];
            let b = values[s.b as usize];
            match s.kind {
                StepKind::Add => {
                    values[s.dst as usize] = a.wrapping_add(b);
                    if s.fdst != NO_FLAG_CELL {
                        flags[s.fdst as usize] = Flags::from_add(a, b);
                    }
                }
                StepKind::Sub => {
                    values[s.dst as usize] = a.wrapping_sub(b);
                    if s.fdst != NO_FLAG_CELL {
                        flags[s.fdst as usize] = Flags::from_sub(a, b);
                    }
                }
                StepKind::And => {
                    let v = a & b;
                    values[s.dst as usize] = v;
                    if s.fdst != NO_FLAG_CELL {
                        flags[s.fdst as usize] = Flags::from_logic_result(v);
                    }
                }
                StepKind::Or => {
                    let v = a | b;
                    values[s.dst as usize] = v;
                    if s.fdst != NO_FLAG_CELL {
                        flags[s.fdst as usize] = Flags::from_logic_result(v);
                    }
                }
                StepKind::Xor => {
                    let v = a ^ b;
                    values[s.dst as usize] = v;
                    if s.fdst != NO_FLAG_CELL {
                        flags[s.fdst as usize] = Flags::from_logic_result(v);
                    }
                }
                StepKind::Cmp => {
                    if s.fdst != NO_FLAG_CELL {
                        flags[s.fdst as usize] = Flags::from_sub(a, b);
                    }
                }
                StepKind::Test => {
                    if s.fdst != NO_FLAG_CELL {
                        flags[s.fdst as usize] = Flags::from_logic_result(a & b);
                    }
                }
                StepKind::Lea => {
                    values[s.dst as usize] = a
                        .wrapping_add(b.wrapping_mul(s.scale))
                        .wrapping_add(s.imm as u32);
                }
                StepKind::Shift(op) | StepKind::AluGen(op) => {
                    let prev = flags[s.fsrc as usize];
                    match eval_alu_with_flags(op, a, b, prev) {
                        Ok(r) => {
                            values[s.dst as usize] = r.value;
                            if s.fdst != NO_FLAG_CELL {
                                flags[s.fdst as usize] = r.flags;
                            }
                        }
                        Err(_) => {
                            return ProbeOutcome::Faulted {
                                uop_index: s.uop_index as usize,
                            }
                        }
                    }
                }
                StepKind::Load => {
                    let addr = a
                        .wrapping_add(b.wrapping_mul(s.scale))
                        .wrapping_add(s.imm as u32);
                    // Latest same-address store in the frame forwards; the
                    // backward scan finds exactly what the interpreter's
                    // latest-wins hash map holds.
                    let value = match transactions
                        .iter()
                        .rev()
                        .find(|t| t.is_store && t.addr == addr)
                    {
                        Some(t) => t.value,
                        None => m.load32(addr),
                    };
                    values[s.dst as usize] = value;
                    transactions.push(MemTransaction {
                        uop_index: s.uop_index as usize,
                        addr,
                        value,
                        is_store: false,
                    });
                }
                StepKind::Store | StepKind::StoreUnsafe => {
                    let addr = a.wrapping_add(s.imm as u32);
                    if matches!(s.kind, StepKind::StoreUnsafe) {
                        if let Some(t) = transactions.iter().find(|t| t.addr == addr) {
                            return ProbeOutcome::UnsafeConflict {
                                uop_index: s.uop_index as usize,
                                conflicts_with: t.uop_index,
                            };
                        }
                    }
                    transactions.push(MemTransaction {
                        uop_index: s.uop_index as usize,
                        addr,
                        value: b,
                        is_store: true,
                    });
                }
                StepKind::AssertFlags(cc) => {
                    if !cc.holds(flags[s.fsrc as usize]) {
                        return ProbeOutcome::AssertFired {
                            uop_index: s.uop_index as usize,
                        };
                    }
                }
                StepKind::AssertCmp(cc) => {
                    if !cc.holds(Flags::from_sub(a, b)) {
                        return ProbeOutcome::AssertFired {
                            uop_index: s.uop_index as usize,
                        };
                    }
                }
                StepKind::AssertTest(cc) => {
                    if !cc.holds(Flags::from_logic_result(a & b)) {
                        return ProbeOutcome::AssertFired {
                            uop_index: s.uop_index as usize,
                        };
                    }
                }
            }
        }
        ProbeOutcome::Completed
    }

    /// Executes the plan against `m`, committing on clean completion —
    /// the specialized counterpart of [`exec_frame`](crate::exec_frame),
    /// with the same commit order: stores, then live-out registers
    /// (collected before any write), then flags.
    pub fn exec(&self, m: &mut MachineState, scratch: &mut PlanScratch) -> FrameOutcome {
        match self.probe(m, scratch) {
            ProbeOutcome::Completed => {
                for t in &scratch.transactions {
                    if t.is_store {
                        m.store32(t.addr, t.value);
                    }
                }
                // Live-out cells were resolved from the entry snapshot and
                // single-assignment slot cells, so reading them here is the
                // interpreter's collect-before-commit, pre-computed.
                for &(r, cell) in &self.live_out {
                    m.set_reg(r, scratch.values[cell as usize]);
                }
                m.set_flags(scratch.flags[self.flags_out as usize]);
                FrameOutcome::Completed {
                    transactions: scratch.transactions.clone(),
                }
            }
            ProbeOutcome::AssertFired { uop_index } => FrameOutcome::AssertFired { uop_index },
            ProbeOutcome::UnsafeConflict {
                uop_index,
                conflicts_with,
            } => FrameOutcome::UnsafeConflict {
                uop_index,
                conflicts_with,
            },
            ProbeOutcome::Faulted { uop_index } => FrameOutcome::Faulted { uop_index },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exec_frame, optimize, probe_frame, AliasProfile, ExecScratch, OptConfig};
    use replay_frame::{Frame, FrameId};
    use replay_uop::Uop;

    fn mk_frame(uops: Vec<Uop>) -> Frame {
        let n = uops.len();
        Frame {
            id: FrameId(0),
            start_addr: 0,
            uops,
            x86_addrs: vec![0],
            block_starts: vec![0],
            expectations: vec![],
            exit_next: 0,
            orig_uop_count: n,
        }
    }

    fn raw(frame: &Frame) -> OptFrame {
        let mut f = OptFrame::from_frame(frame);
        f.compact();
        f
    }

    /// Probes `f` through both paths from `entry` and requires identical
    /// outcomes, transactions, and committed state.
    fn assert_agree(f: &OptFrame, entry: &MachineState) {
        let plan = ExecPlan::compile(f).expect("frame compiles");
        let mut es = ExecScratch::new();
        let mut ps = PlanScratch::new();
        let interp = probe_frame(f, entry, &mut es);
        let spec = plan.probe(entry, &mut ps);
        assert_eq!(interp, spec, "probe outcomes diverge");
        assert_eq!(es.transactions(), ps.transactions(), "transactions diverge");

        let mut m1 = entry.clone();
        let mut m2 = entry.clone();
        let o1 = exec_frame(f, &mut m1);
        let o2 = plan.exec(&mut m2, &mut ps);
        assert_eq!(o1, o2, "exec outcomes diverge");
        for r in ArchReg::ALL {
            assert_eq!(m1.reg(r), m2.reg(r), "{r} diverges");
        }
        assert_eq!(m1.flags(), m2.flags(), "flags diverge");
        for t in es.transactions() {
            assert_eq!(m1.load32(t.addr), m2.load32(t.addr), "mem {:#x}", t.addr);
        }
    }

    #[test]
    fn folds_moves_and_skips_control() {
        let frame = mk_frame(vec![
            Uop::mov_imm(ArchReg::Eax, 7),
            Uop::alu(Opcode::Mov, ArchReg::Ebx, ArchReg::Eax, ArchReg::Eax),
            Uop::nop(),
            Uop::alu_imm(Opcode::Add, ArchReg::Ecx, ArchReg::Ebx, 1),
        ]);
        let f = raw(&frame);
        let plan = ExecPlan::compile(&f).unwrap();
        // MovImm folded, Mov aliased, Nop skipped: only the Add remains.
        assert_eq!(plan.step_count(), 1);
        assert_agree(&f, &MachineState::new());
    }

    #[test]
    fn specialized_matches_interpreter_on_mixed_frames() {
        let frame = mk_frame(vec![
            Uop::store(ArchReg::Esp, -4, ArchReg::Ebp),
            Uop::lea(ArchReg::Esp, ArchReg::Esp, None, 1, -4),
            Uop::store(ArchReg::Esp, -4, ArchReg::Ebx),
            Uop::load(ArchReg::Ecx, ArchReg::Esp, 4),
            Uop::alu(Opcode::Xor, ArchReg::Eax, ArchReg::Eax, ArchReg::Eax),
            Uop::alu_imm(Opcode::Shl, ArchReg::Ecx, ArchReg::Ecx, 3),
            Uop::cmp_imm(ArchReg::Ecx, 0x88),
        ]);
        for (raw_or_opt, seed) in [(false, 1u32), (false, 99), (true, 1), (true, 99)] {
            let f = if raw_or_opt {
                optimize(&frame, &AliasProfile::empty(), &OptConfig::default()).0
            } else {
                raw(&frame)
            };
            let mut m = MachineState::new();
            m.set_reg(ArchReg::Esp, 0x9000 + seed * 4);
            m.set_reg(ArchReg::Ebp, 0x11 ^ seed);
            m.set_reg(ArchReg::Ebx, seed.wrapping_mul(77));
            assert_agree(&f, &m);
        }
    }

    #[test]
    fn assert_fire_and_fault_report_same_slot() {
        let frame = mk_frame(vec![
            Uop::cmp_imm(ArchReg::Ebx, 7),
            Uop::assert_cc(Cond::Eq),
            Uop::alu(Opcode::Div, ArchReg::Eax, ArchReg::Eax, ArchReg::Ecx),
        ]);
        let f = raw(&frame);
        // EBX != 7: the assertion fires in both paths at the same slot.
        let mut m = MachineState::new();
        m.set_reg(ArchReg::Ebx, 8);
        assert_agree(&f, &m);
        // EBX == 7, ECX == 0: the divide faults in both paths.
        let mut m = MachineState::new();
        m.set_reg(ArchReg::Ebx, 7);
        m.set_reg(ArchReg::Eax, 4);
        assert_agree(&f, &m);
    }

    #[test]
    fn unsafe_conflict_attribution_is_identical() {
        let frame = mk_frame(vec![
            Uop::store(ArchReg::Esp, -4, ArchReg::Ebp).at(1),
            Uop::store(ArchReg::Edi, 0, ArchReg::Ebx).at(2),
            Uop::load(ArchReg::Ecx, ArchReg::Esp, -4).at(3),
        ]);
        let (f, stats) = optimize(&frame, &AliasProfile::empty(), &OptConfig::default());
        assert_eq!(stats.unsafe_stores, 1);
        for edi in [0x1000u32 - 4, 0x8000] {
            let mut m = MachineState::new();
            m.set_reg(ArchReg::Esp, 0x1000);
            m.set_reg(ArchReg::Edi, edi);
            m.set_reg(ArchReg::Ebp, 7);
            m.set_reg(ArchReg::Ebx, 9);
            assert_agree(&f, &m);
        }
    }

    #[test]
    fn store_forwarding_reads_latest_store() {
        let frame = mk_frame(vec![
            Uop::store(ArchReg::Esp, 0, ArchReg::Ebp),
            Uop::store(ArchReg::Esp, 0, ArchReg::Ebx),
            Uop::load(ArchReg::Eax, ArchReg::Esp, 0),
        ]);
        let f = raw(&frame);
        let mut m = MachineState::new();
        m.set_reg(ArchReg::Esp, 0x2000);
        m.set_reg(ArchReg::Ebp, 1111);
        m.set_reg(ArchReg::Ebx, 2222);
        let plan = ExecPlan::compile(&f).unwrap();
        let mut ps = PlanScratch::new();
        let mut m2 = m.clone();
        plan.exec(&mut m2, &mut ps);
        assert_eq!(m2.reg(ArchReg::Eax), 2222, "latest store forwards");
        assert_agree(&f, &m);
    }

    #[test]
    fn scratch_reuse_across_plans_is_clean() {
        let big = mk_frame(
            (0..40)
                .map(|i| Uop::alu_imm(Opcode::Add, ArchReg::Eax, ArchReg::Eax, i))
                .collect(),
        );
        let small = mk_frame(vec![Uop::alu_imm(
            Opcode::Add,
            ArchReg::Ebx,
            ArchReg::Ebx,
            1,
        )]);
        let (bf, sf) = (raw(&big), raw(&small));
        let bp = ExecPlan::compile(&bf).unwrap();
        let sp = ExecPlan::compile(&sf).unwrap();
        let mut scratch = PlanScratch::new();
        let m = MachineState::new();
        // Interleave sizes: stale cells from the big plan must never leak
        // into the small plan's results.
        for _ in 0..3 {
            assert_eq!(bp.probe(&m, &mut scratch), ProbeOutcome::Completed);
            assert_eq!(sp.probe(&m, &mut scratch), ProbeOutcome::Completed);
            let mut m2 = m.clone();
            sp.exec(&mut m2, &mut scratch);
            assert_eq!(m2.reg(ArchReg::Ebx), 1);
        }
    }
}
